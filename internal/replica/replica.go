// Package replica turns a store.Store into a read replica of a leader
// relsim-serve instance — the consumer of the leader's GET /checkpoint
// and GET /log endpoints. A Follower bootstraps by fetching the
// leader's newest checkpoint and Resetting its store onto it, then
// tails the replication feed in pages, applying each page through the
// ordinary store.Update path so MVCC snapshots, the server's versioned
// cache aging, and the follower's own WAL (when it is durable) all keep
// working exactly as they do on the leader. When the leader signals a
// gap — the follower's resume point has aged past both the in-memory
// log and the WAL-backed feed — the follower re-bootstraps
// automatically and resumes tailing.
//
// Correctness rests on two invariants of the leader's feed: updates are
// delivered contiguously by version (the follower verifies this and
// treats any hole as a gap), and query results are a pure function of
// (version, pattern) — so a replica at version v answers /search
// byte-identically to the leader at v. The follower assumes a single
// leader lineage; it cannot detect a leader that was rebuilt from
// scratch with a diverging history at the same version numbers.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"relsim/internal/graph"
	"relsim/internal/store"
	"relsim/internal/telemetry"
)

// CheckpointVersionHeader carries the checkpoint's version on
// GET /checkpoint responses.
const CheckpointVersionHeader = "X-Relsim-Checkpoint-Version"

// Defaults for Options zero values.
const (
	DefaultPollInterval = 200 * time.Millisecond
	DefaultMaxBackoff   = 5 * time.Second
	DefaultPage         = 512
)

// Options configures a Follower. The zero value is usable.
type Options struct {
	// PollInterval is the idle cadence: how often the feed is polled
	// once the follower is caught up. While behind, pages are fetched
	// back-to-back.
	PollInterval time.Duration
	// MaxBackoff caps the exponential backoff after leader errors.
	MaxBackoff time.Duration
	// Page bounds one /log page (the leader clamps it too).
	Page int
	// Client is the HTTP client; nil uses a client with a 30s timeout.
	Client *http.Client
	// Logf, when set, receives replication lifecycle messages
	// (bootstraps, gaps, errors). log.Printf fits.
	Logf func(format string, args ...any)
}

// Status is a point-in-time view of the follower, served under
// "replication" in the follower's /stats and /healthz. Lag is reported
// two ways: LagVersions is how many versions the follower trails the
// leader's version as of the last successful poll, and LagSeconds is
// how long the follower has continuously been behind (0 while caught
// up; when the leader is unreachable it keeps growing, which is the
// point — staleness includes not being able to ask).
type Status struct {
	Leader         string  `json:"leader"`
	LeaderVersion  uint64  `json:"leader_version"`
	LocalVersion   uint64  `json:"local_version"`
	LagVersions    uint64  `json:"lag_versions"`
	LagSeconds     float64 `json:"lag_seconds"`
	CaughtUp       bool    `json:"caught_up"`
	SyncedOnce     bool    `json:"synced_once"`
	Bootstraps     uint64  `json:"bootstraps"`
	GapResyncs     uint64  `json:"gap_resyncs"`
	PagesApplied   uint64  `json:"pages_applied"`
	UpdatesApplied uint64  `json:"updates_applied"`
	Errors         uint64  `json:"errors"`
	// ThrottledPolls counts polls the leader shed with 429/503 and an
	// explicit Retry-After hint the follower honored (a subset of
	// Errors). A climbing counter here means the leader is under
	// admission pressure, not that replication is broken.
	ThrottledPolls uint64 `json:"throttled_polls"`
	LastError      string `json:"last_error,omitempty"`
}

// Follower tails a leader into a local store. Construct with New, kick
// off with Start, keep running with Run. Status is safe to call from
// any goroutine (the server's /stats and /healthz do).
type Follower struct {
	st     store.API
	leader string
	opt    Options
	client *http.Client

	mu            sync.Mutex
	leaderVersion uint64
	caughtUp      bool
	syncedOnce    bool
	behindSince   time.Time // zero while caught up
	bootstraps    uint64
	gapResyncs    uint64
	pages         uint64
	updates       uint64
	errs          uint64
	throttled     uint64
	lastError     string
}

// throttledError reports a leader that shed a feed or checkpoint
// request under admission control (429 rate limit or 503 shed) with an
// explicit Retry-After hint. The retry loops honor the hint instead of
// their own exponential guess: the leader knows when capacity frees
// up, and a fleet of followers hammering a shedding leader at backoff
// cadence is exactly the load it is trying to shed.
type throttledError struct {
	status  int
	after   time.Duration
	surface string // "feed" or "checkpoint"
}

func (e *throttledError) Error() string {
	return fmt.Sprintf("replica: leader %s: status %d (throttled, retry after %v)", e.surface, e.status, e.after)
}

// throttleHint extracts the leader's Retry-After hint from a shed
// response: 429 and 503 only, integer seconds only (the relsim-serve
// admission layer emits whole seconds; the HTTP-date form is not
// worth parsing for a peer we control).
func throttleHint(resp *http.Response, surface string) *throttledError {
	if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
		return nil
	}
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs < 0 {
		return nil
	}
	return &throttledError{status: resp.StatusCode, after: time.Duration(secs) * time.Second, surface: surface}
}

// New builds a follower of the leader at base URL leaderURL (scheme +
// host, e.g. "http://10.0.0.1:8080") applying into st. A sharded st
// replicates a sharded leader: the feed carries the full logical
// update stream either way, and the sharded store materializes each
// shard's owned subset as it applies — but the shard counts must
// agree (see server.HealthzResponse.Shards), or the follower's edge
// ownership diverges from the leader's checkpoints.
func New(st store.API, leaderURL string, opt Options) *Follower {
	if opt.PollInterval <= 0 {
		opt.PollInterval = DefaultPollInterval
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = DefaultMaxBackoff
	}
	if opt.Page <= 0 {
		opt.Page = DefaultPage
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Follower{st: st, leader: strings.TrimRight(leaderURL, "/"), opt: opt, client: client}
}

// Leader returns the leader's base URL (the server's 403 body points
// mutation traffic at it).
func (f *Follower) Leader() string { return f.leader }

// Instrument registers the follower's replication metrics with reg as
// scrape-time callbacks over Status(): lag in versions and seconds,
// sync state, and the cumulative apply/error counters. A nil registry
// is a no-op.
func (f *Follower) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("relsim_replica_lag_versions",
		"Versions the follower trails the leader (as of the last poll).",
		func() float64 { return float64(f.Status().LagVersions) })
	reg.GaugeFunc("relsim_replica_lag_seconds",
		"How long the follower has continuously been behind; grows while the leader is unreachable.",
		func() float64 { return f.Status().LagSeconds })
	reg.GaugeFunc("relsim_replica_synced",
		"1 after the first successful sync, 0 before.",
		func() float64 {
			if f.Status().SyncedOnce {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("relsim_replica_leader_version",
		"Leader version as of the last successful poll.",
		func() float64 { return float64(f.Status().LeaderVersion) })
	reg.CounterFunc("relsim_replica_bootstraps_total",
		"Checkpoint bootstraps performed.",
		func() float64 { return float64(f.Status().Bootstraps) })
	reg.CounterFunc("relsim_replica_gap_resyncs_total",
		"Re-bootstraps forced by a feed gap.",
		func() float64 { return float64(f.Status().GapResyncs) })
	reg.CounterFunc("relsim_replica_pages_applied_total",
		"Feed pages applied.",
		func() float64 { return float64(f.Status().PagesApplied) })
	reg.CounterFunc("relsim_replica_updates_applied_total",
		"Individual updates applied.",
		func() float64 { return float64(f.Status().UpdatesApplied) })
	reg.CounterFunc("relsim_replica_errors_total",
		"Replication errors (leader unreachable, malformed pages).",
		func() float64 { return float64(f.Status().Errors) })
	reg.CounterFunc("relsim_replica_throttled_polls_total",
		"Polls the leader shed with 429/503 whose Retry-After hint the follower honored.",
		func() float64 { return float64(f.Status().ThrottledPolls) })
}

// Store returns the store the follower applies into.
func (f *Follower) Store() store.API { return f.st }

// Status returns a point-in-time replication summary.
func (f *Follower) Status() Status {
	local := f.st.Version()
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Status{
		Leader:         f.leader,
		LeaderVersion:  f.leaderVersion,
		LocalVersion:   local,
		CaughtUp:       f.caughtUp,
		SyncedOnce:     f.syncedOnce,
		Bootstraps:     f.bootstraps,
		GapResyncs:     f.gapResyncs,
		PagesApplied:   f.pages,
		UpdatesApplied: f.updates,
		Errors:         f.errs,
		ThrottledPolls: f.throttled,
		LastError:      f.lastError,
	}
	if f.leaderVersion > local {
		s.LagVersions = f.leaderVersion - local
	}
	if !f.behindSince.IsZero() {
		s.LagSeconds = time.Since(f.behindSince).Seconds()
	}
	return s
}

func (f *Follower) logf(format string, args ...any) {
	if f.opt.Logf != nil {
		f.opt.Logf("replica: "+format, args...)
	}
}

// retryWait picks the delay before the next attempt after err: the
// leader's Retry-After hint when err carries one (counted as a
// throttled poll), otherwise the caller's exponential backoff. A
// throttle hint of zero seconds falls back to the backoff — "now" is
// not a cadence.
func (f *Follower) retryWait(err error, backoff time.Duration) time.Duration {
	var th *throttledError
	if !errors.As(err, &th) {
		return backoff
	}
	f.mu.Lock()
	f.throttled++
	f.mu.Unlock()
	if th.after > 0 {
		return th.after
	}
	return backoff
}

func (f *Follower) noteError(err error) {
	f.mu.Lock()
	f.errs++
	f.lastError = err.Error()
	f.caughtUp = false
	if f.behindSince.IsZero() {
		f.behindSince = time.Now()
	}
	f.mu.Unlock()
}

// noteProgress records a successful poll that observed the leader at
// leaderVersion with the local store at local.
func (f *Follower) noteProgress(leaderVersion, local uint64, pages, ups int) {
	f.mu.Lock()
	f.leaderVersion = leaderVersion
	f.pages += uint64(pages)
	f.updates += uint64(ups)
	f.syncedOnce = true
	f.lastError = ""
	if local >= leaderVersion {
		f.caughtUp = true
		f.behindSince = time.Time{}
	} else {
		f.caughtUp = false
		if f.behindSince.IsZero() {
			f.behindSince = time.Now()
		}
	}
	f.mu.Unlock()
}

// Start performs the initial synchronization: bootstrap (when the
// leader's checkpoint is ahead of the local store — always, for a
// fresh follower) and one tailing pass to the leader's current version.
// It retries with backoff until it succeeds or ctx ends, so a follower
// can be started before its leader finishes booting. Serve traffic
// only after Start returns nil: the graph (and the label set a nil
// schema is derived from) is empty before the first bootstrap.
func (f *Follower) Start(ctx context.Context) error {
	backoff := f.opt.PollInterval
	for {
		err := f.Bootstrap(ctx)
		if err == nil {
			if err = f.syncToLive(ctx); err == nil {
				return nil
			}
		}
		if ctx.Err() != nil {
			return fmt.Errorf("replica: initial sync: %w", err)
		}
		f.noteError(err)
		wait := f.retryWait(err, backoff)
		f.logf("initial sync: %v (retrying in %v)", err, wait)
		if !sleep(ctx, wait) {
			return fmt.Errorf("replica: initial sync: %w", err)
		}
		if backoff *= 2; backoff > f.opt.MaxBackoff {
			backoff = f.opt.MaxBackoff
		}
	}
}

// Run tails the leader until ctx ends: fetch a page, apply it, repeat —
// back-to-back while behind, every PollInterval when caught up, with
// exponential backoff (capped at MaxBackoff) while the leader errors,
// and an automatic re-bootstrap when the feed signals a gap.
func (f *Follower) Run(ctx context.Context) {
	backoff := f.opt.PollInterval
	for ctx.Err() == nil {
		progressed, err := f.syncOnce(ctx)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			f.noteError(err)
			wait := f.retryWait(err, backoff)
			f.logf("sync: %v (backing off %v)", err, wait)
			if !sleep(ctx, wait) {
				return
			}
			if backoff *= 2; backoff > f.opt.MaxBackoff {
				backoff = f.opt.MaxBackoff
			}
		case progressed:
			backoff = f.opt.PollInterval
		default:
			backoff = f.opt.PollInterval
			if !sleep(ctx, f.opt.PollInterval) {
				return
			}
		}
	}
}

// syncToLive pages until the follower reaches the leader version
// observed on the first page (later commits are Run's business).
func (f *Follower) syncToLive(ctx context.Context) error {
	for {
		progressed, err := f.syncOnce(ctx)
		if err != nil {
			return err
		}
		if !progressed {
			return nil
		}
	}
}

// syncOnce fetches and applies one feed page. It reports whether the
// follower advanced (more paging may be warranted) and handles the gap
// signal by re-bootstrapping inline.
func (f *Follower) syncOnce(ctx context.Context) (bool, error) {
	local := f.st.Version()
	feed, err := f.fetchPage(ctx, local)
	if err != nil {
		return false, err
	}
	if feed.Gap || (len(feed.Updates) > 0 && feed.Updates[0].Version != local+1) {
		// The leader cannot (or, hole in the page, did not) serve the
		// records after our resume point: re-bootstrap from a checkpoint.
		f.mu.Lock()
		f.gapResyncs++
		f.mu.Unlock()
		f.logf("gap at version %d (leader dropped through %d): re-bootstrapping", local, feed.DroppedThrough)
		if err := f.Bootstrap(ctx); err != nil {
			return false, err
		}
		// Progress only if the bootstrap actually advanced us. A gap the
		// leader's checkpoint cannot bridge either (its newest checkpoint
		// is not ahead of us — a corrupt WAL record on the leader, say)
		// would otherwise loop gap→no-op-bootstrap→gap at network speed;
		// reporting no progress routes it through the poll-interval sleep.
		return f.st.Version() > local, nil
	}
	if len(feed.Updates) > 0 {
		if err := f.apply(feed.Updates); err != nil {
			return false, err
		}
	}
	// An empty page is a poll, not an applied page — don't let idle
	// polling inflate the pages counter.
	pages := 0
	if len(feed.Updates) > 0 {
		pages = 1
	}
	f.noteProgress(feed.Version, f.st.Version(), pages, len(feed.Updates))
	return len(feed.Updates) > 0, nil
}

// fetchPage GETs one /log page from the leader.
func (f *Follower) fetchPage(ctx context.Context, since uint64) (store.Feed, error) {
	var feed store.Feed
	u := fmt.Sprintf("%s/log?since=%d&max=%d", f.leader, since, f.opt.Page)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return feed, fmt.Errorf("replica: %w", err)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return feed, fmt.Errorf("replica: leader feed: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if th := throttleHint(resp, "feed"); th != nil {
			return feed, th
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		// A 400 here usually means the leader thinks our version is in
		// its future — a diverging leader (wiped data directory, lost
		// history). That needs an operator, not a re-bootstrap backwards.
		return feed, fmt.Errorf("replica: leader feed: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&feed); err != nil {
		return feed, fmt.Errorf("replica: leader feed: %w", err)
	}
	return feed, nil
}

// Bootstrap fetches the leader's checkpoint and Resets the local store
// onto it — unless the local store is already at or past the
// checkpoint's version (a durable follower restarting with recovered
// state skips the transfer entirely and just resumes tailing; the
// leader answers 204 to the conditional request without sending the
// body).
func (f *Follower) Bootstrap(ctx context.Context) error {
	local := f.st.Version()
	fresh := local == 0 && f.st.Stats().Nodes == 0
	u := f.leader + "/checkpoint"
	if !fresh {
		// Conditional transfer: nothing to send if the checkpoint is not
		// ahead of us (unless we are empty — then even a version-0
		// checkpoint carries the seed graph we lack).
		u += "?if_newer_than=" + strconv.FormatUint(local, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: leader checkpoint: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNoContent:
		return nil // already at or past the leader's newest checkpoint
	default:
		if th := throttleHint(resp, "checkpoint"); th != nil {
			return th
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("replica: leader checkpoint: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	version, err := strconv.ParseUint(resp.Header.Get(CheckpointVersionHeader), 10, 64)
	if err != nil {
		return fmt.Errorf("replica: leader checkpoint: bad %s header %q", CheckpointVersionHeader, resp.Header.Get(CheckpointVersionHeader))
	}
	g, err := graph.Read(resp.Body)
	if err != nil {
		return fmt.Errorf("replica: leader checkpoint: %w", err)
	}
	if version < local {
		// A non-conditional (fresh) request raced a leader whose newest
		// checkpoint is older than we are — possible only off the fresh
		// path, but Reset would refuse anyway; make the message clearer.
		return fmt.Errorf("replica: leader checkpoint at version %d is behind local version %d", version, local)
	}
	if err := f.st.Reset(g, version); err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	f.mu.Lock()
	f.bootstraps++
	f.mu.Unlock()
	f.logf("bootstrapped from %s at version %d (%d nodes, %d edges)", f.leader, version, g.NumNodes(), g.NumEdges())
	return nil
}

// apply commits one feed page as a single write transaction, verifying
// version continuity and delegating the op dispatch (and the replayed
// node-identity check) to store.Tx.Apply — the same replay primitive
// crash recovery is built on. Applying through store.Update keeps
// every leader-side mechanism working on the follower: MVCC
// publication, cache aging via the update observer, the bounded feed
// (a follower can itself be tailed), and the follower's own WAL when
// it is durable.
func (f *Follower) apply(ups []store.Update) error {
	return f.st.Update(func(tx *store.Tx) error {
		for _, u := range ups {
			if u.Version <= tx.Version() {
				continue // overlap with already-applied history
			}
			if u.Version != tx.Version()+1 {
				return fmt.Errorf("feed hole: update at version %d after %d", u.Version, tx.Version())
			}
			if err := tx.Apply(u); err != nil {
				return err
			}
		}
		return nil
	})
}

// sleep waits d or until ctx ends, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// LeaderURL validates a -follow flag value: an absolute http(s) URL
// with no path, query or fragment beyond an optional trailing slash.
func LeaderURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("replica: leader url: %w", err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("replica: leader url %q: want http(s)://host[:port]", raw)
	}
	if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("replica: leader url %q: must not carry a path or query", raw)
	}
	return strings.TrimRight(raw, "/"), nil
}
