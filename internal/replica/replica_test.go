package replica_test

// Follower protocol tests against a real in-process leader: checkpoint
// bootstrap, contiguous tailing (including WAL-backed pages past the
// leader's in-memory retention), convergence to byte-identical reads,
// and the automatic re-bootstrap on a hard feed gap. The external test
// package breaks no import cycle: server imports replica for the
// status type, and these tests need server for the leader.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"relsim/internal/graph"
	"relsim/internal/replica"
	"relsim/internal/server"
	"relsim/internal/store"
)

func leaderGraph() *graph.Graph {
	g := graph.New()
	p1 := g.AddNode("p1", "paper")
	p2 := g.AddNode("p2", "paper")
	a1 := g.AddNode("a1", "author")
	g.AddEdge(p1, "by", a1)
	g.AddEdge(p2, "by", a1)
	return g
}

// newLeader serves st over httptest and returns its base URL.
func newLeader(t *testing.T, st *store.Store) string {
	t.Helper()
	ts := httptest.NewServer(server.New(st, nil))
	t.Cleanup(ts.Close)
	return ts.URL
}

// mutate commits one add-node + add-edge batch (2 versions).
func mutate(t *testing.T, st *store.Store, i int) {
	t.Helper()
	err := st.Update(func(tx *store.Tx) error {
		id := tx.AddNode(fmt.Sprintf("n-%d", i), "paper")
		return tx.AddEdge(id, "by", 2)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// assertConverged checks the follower matches the leader exactly at the
// leader's version.
func assertConverged(t *testing.T, leader, follower *store.Store) {
	t.Helper()
	ls, lv := leader.Snapshot()
	fs, fv := follower.Snapshot()
	if lv != fv {
		t.Fatalf("follower at version %d, leader at %d", fv, lv)
	}
	if ls.NumNodes() != fs.NumNodes() || ls.NumEdges() != fs.NumEdges() {
		t.Fatalf("follower graph %d/%d != leader %d/%d", fs.NumNodes(), fs.NumEdges(), ls.NumNodes(), ls.NumEdges())
	}
}

func TestFollowerBootstrapAndTail(t *testing.T) {
	lst := store.New(leaderGraph())
	url := newLeader(t, lst)
	for i := 0; i < 5; i++ {
		mutate(t, lst, i)
	}

	fst := store.New(nil)
	f := replica.New(fst, url, replica.Options{PollInterval: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Start = bootstrap (the version-0 seed arrives via the checkpoint
	// transfer, it is not in the update log) + tail to live.
	assertConverged(t, lst, fst)
	st := f.Status()
	if st.Bootstraps != 1 || !st.SyncedOnce || !st.CaughtUp || st.LagVersions != 0 {
		t.Fatalf("post-start status = %+v", st)
	}

	// New commits are picked up by the running tailer.
	for i := 5; i < 8; i++ {
		mutate(t, lst, i)
	}
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	deadline := time.Now().Add(20 * time.Second)
	for fst.Version() != lst.Version() {
		if time.Now().After(deadline) {
			t.Fatalf("tailer never converged: follower %d leader %d (status %+v)", fst.Version(), lst.Version(), f.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	assertConverged(t, lst, fst)
	// The in-memory leader's /checkpoint streams the live snapshot, so
	// the bootstrap already carried the first 10 versions; only the 3
	// post-bootstrap batches (6 updates) flow through the feed.
	if st := f.Status(); st.UpdatesApplied != 6 || st.Bootstraps != 1 {
		t.Fatalf("final status = %+v, want 6 updates applied over 1 bootstrap", st)
	}
}

// TestFollowerWALBackedCatchUp: the leader's in-memory retention is
// tiny, so the whole history after the boot checkpoint is served
// through the WAL-backed feed — the follower still converges without a
// single re-bootstrap.
func TestFollowerWALBackedCatchUp(t *testing.T) {
	dir := t.TempDir()
	lst, err := store.Open(dir, store.WithSeed(leaderGraph()), store.WithCheckpointEvery(0), store.WithLogRetention(2))
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	url := newLeader(t, lst)
	for i := 0; i < 10; i++ {
		mutate(t, lst, i) // 20 versions; memory holds only the last 2
	}

	fst := store.New(nil)
	f := replica.New(fst, url, replica.Options{PollInterval: 10 * time.Millisecond, Page: 3})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, lst, fst)
	if st := f.Status(); st.Bootstraps != 1 || st.GapResyncs != 0 || st.UpdatesApplied != 20 {
		t.Fatalf("WAL-backed catch-up status = %+v, want 20 updates, no gap resyncs", st)
	}
}

// TestFollowerGapRebootstrap: checkpoint trimming on the leader retires
// the records a parked follower needs; on its next poll the feed
// signals the hard gap and the follower re-bootstraps automatically,
// converging again.
func TestFollowerGapRebootstrap(t *testing.T) {
	dir := t.TempDir()
	lst, err := store.Open(dir, store.WithSeed(leaderGraph()),
		store.WithCheckpointEvery(0), store.WithLogRetention(2), store.WithSegmentBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	url := newLeader(t, lst)
	for i := 0; i < 3; i++ {
		mutate(t, lst, i)
	}

	fst := store.New(nil)
	f := replica.New(fst, url, replica.Options{PollInterval: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, lst, fst)

	// The follower parks; the leader moves on and a checkpoint trims the
	// WAL below its new version, hard-gapping the parked resume point.
	for i := 3; i < 8; i++ {
		mutate(t, lst, i)
	}
	if err := lst.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if feed := lst.LogFeed(fst.Version(), 0); !feed.Gap {
		t.Fatalf("leader did not hard-gap the parked follower: %+v", feed)
	}

	// The tailer's next poll hits the gap, re-bootstraps, and converges.
	runCtx, stopRun := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() { defer close(done); f.Run(runCtx) }()
	deadline := time.Now().Add(20 * time.Second)
	for fst.Version() != lst.Version() {
		if time.Now().After(deadline) {
			t.Fatalf("never reconverged after gap: follower %d leader %d (status %+v)", fst.Version(), lst.Version(), f.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopRun()
	<-done
	assertConverged(t, lst, fst)
	st := f.Status()
	if st.Bootstraps < 2 || st.GapResyncs < 1 {
		t.Fatalf("gap status = %+v, want a re-bootstrap driven by a gap resync", st)
	}
}

// TestFollowerDurableRestartResumes: a durable follower recovers its
// applied state and resumes tailing from it — the conditional
// checkpoint request skips the transfer when the leader's newest
// checkpoint is not ahead.
func TestFollowerDurableRestartResumes(t *testing.T) {
	// The leader must be durable: its newest on-disk checkpoint stays at
	// the boot version 0, so the restarting follower's conditional
	// request can actually answer 204 (an in-memory leader always
	// streams the live snapshot).
	lst, err := store.Open(t.TempDir(), store.WithSeed(leaderGraph()), store.WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	url := newLeader(t, lst)
	for i := 0; i < 4; i++ {
		mutate(t, lst, i)
	}

	fdir := t.TempDir()
	fst, err := store.Open(fdir)
	if err != nil {
		t.Fatal(err)
	}
	f := replica.New(fst, url, replica.Options{PollInterval: 10 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, lst, fst)
	if err := fst.Close(); err != nil {
		t.Fatal(err)
	}

	// Leader advances while the follower is down.
	for i := 4; i < 6; i++ {
		mutate(t, lst, i)
	}

	// Restart: recovered version resumes; no second checkpoint transfer
	// is needed (the leader's newest checkpoint is version 0, behind the
	// recovered 8 — the conditional request answers 204).
	fst2, err := store.Open(fdir)
	if err != nil {
		t.Fatal(err)
	}
	defer fst2.Close()
	if fst2.Version() != 8 {
		t.Fatalf("recovered follower version = %d, want 8", fst2.Version())
	}
	f2 := replica.New(fst2, url, replica.Options{PollInterval: 10 * time.Millisecond})
	if err := f2.Start(ctx); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, lst, fst2)
	if st := f2.Status(); st.Bootstraps != 0 || st.UpdatesApplied != 4 {
		t.Fatalf("restart status = %+v, want 4 updates applied with no transfer", st)
	}
}
