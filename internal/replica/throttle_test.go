package replica_test

// Retry-After honoring against a fake shedding leader: a wrapper in
// front of a real leader sheds the first /checkpoint request with 429
// and the first /log request with 503, both carrying Retry-After: 1.
// The follower is configured with a backoff cap of 20ms, so the only
// way its initial sync can take ~2 seconds is by trusting the leader's
// hints over its own exponential schedule.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"relsim/internal/replica"
	"relsim/internal/server"
	"relsim/internal/store"
)

// sheddingLeader wraps a real leader handler and sheds the first hit
// on each replication surface. checkpointSheds/feedSheds count down;
// header controls whether the shed carries a Retry-After hint.
type sheddingLeader struct {
	inner           http.Handler
	checkpointSheds atomic.Int32
	feedSheds       atomic.Int32
	retryAfter      string
}

func (l *sheddingLeader) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var sheds *atomic.Int32
	status := 0
	switch r.URL.Path {
	case "/checkpoint":
		sheds, status = &l.checkpointSheds, http.StatusTooManyRequests
	case "/log":
		sheds, status = &l.feedSheds, http.StatusServiceUnavailable
	}
	if sheds != nil && sheds.Add(-1) >= 0 {
		if l.retryAfter != "" {
			w.Header().Set("Retry-After", l.retryAfter)
		}
		w.WriteHeader(status)
		return
	}
	l.inner.ServeHTTP(w, r)
}

func newSheddingLeader(t *testing.T, checkpointSheds, feedSheds int32, retryAfter string) (*sheddingLeader, string) {
	t.Helper()
	l := &sheddingLeader{inner: server.New(store.New(leaderGraph()), nil), retryAfter: retryAfter}
	l.checkpointSheds.Store(checkpointSheds)
	l.feedSheds.Store(feedSheds)
	ts := httptest.NewServer(l)
	t.Cleanup(ts.Close)
	return l, ts.URL
}

func TestFollowerHonorsRetryAfter(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out two 1-second Retry-After hints")
	}
	_, url := newSheddingLeader(t, 1, 1, "1")

	f := replica.New(store.New(nil), url, replica.Options{
		PollInterval: 5 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	start := time.Now()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	// Two sheds, each hinting 1 second. Exponential backoff alone (cap
	// 20ms) would retry both inside ~100ms; honoring the hints cannot
	// finish under ~2 seconds minus timer slack.
	if elapsed < 1800*time.Millisecond {
		t.Errorf("initial sync took %v; Retry-After hints (2 × 1s) were not honored", elapsed)
	}

	st := f.Status()
	if st.ThrottledPolls != 2 {
		t.Errorf("ThrottledPolls = %d, want 2 (one checkpoint 429, one feed 503)", st.ThrottledPolls)
	}
	if st.Errors < st.ThrottledPolls {
		t.Errorf("Errors = %d < ThrottledPolls = %d; throttles must count as errors too", st.Errors, st.ThrottledPolls)
	}
	if !st.SyncedOnce || !st.CaughtUp {
		t.Errorf("post-start status = %+v, want synced and caught up", st)
	}
}

// TestFollowerShedWithoutHint checks the fallback: a shed response with
// no Retry-After stays on the follower's own exponential backoff and is
// not counted as a throttled poll.
func TestFollowerShedWithoutHint(t *testing.T) {
	_, url := newSheddingLeader(t, 1, 1, "")

	f := replica.New(store.New(nil), url, replica.Options{
		PollInterval: 5 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	start := time.Now()
	if err := f.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("initial sync took %v despite a 20ms backoff cap", elapsed)
	}

	st := f.Status()
	if st.ThrottledPolls != 0 {
		t.Errorf("ThrottledPolls = %d, want 0 (sheds carried no Retry-After)", st.ThrottledPolls)
	}
	if st.Errors < 2 {
		t.Errorf("Errors = %d, want >= 2 (both sheds still count as errors)", st.Errors)
	}
}
