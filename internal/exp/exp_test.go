package exp

import (
	"strings"
	"testing"

	"relsim/internal/datasets"
)

// tinyDBLP is a scaled-down config keeping exp tests fast.
func tinyDBLPCfg() datasets.DBLPConfig {
	cfg := datasets.SmallDBLP()
	cfg.Procs = 30
	cfg.AuthorsPool = 150
	cfg.PapersPerProc = [2]int{3, 8}
	return cfg
}

func tinyBioMedCfg() datasets.BioMedConfig {
	cfg := datasets.SmallBioMed()
	cfg.Phenotypes = 120
	cfg.Diseases = 50
	cfg.Proteins = 120
	cfg.Drugs = 60
	cfg.Anatomy = 30
	cfg.Pathways = 15
	cfg.MiRNAs = 10
	cfg.Queries = 8
	return cfg
}

// TestRelSimRobustDBLP is the operational Definition 1 check: RelSim
// returns exactly equal ranked lists across DBLP2SIGM for every query.
func TestRelSimRobustDBLP(t *testing.T) {
	s := DBLPScenario(tinyDBLPCfg(), datasets.DBLP2SIGM(), datasets.DBLP2SIGMInverse())
	if bad := RobustnessCheck(s); bad != 0 {
		t.Errorf("RelSim differed on %d/%d queries", bad, len(s.Queries))
	}
}

func TestRelSimRobustDBLPX(t *testing.T) {
	s := DBLPScenario(tinyDBLPCfg(), datasets.DBLP2SIGMX(), datasets.DBLP2SIGMInverse())
	if bad := RobustnessCheck(s); bad != 0 {
		t.Errorf("RelSim differed on %d/%d queries under DBLP2SIGMX", bad, len(s.Queries))
	}
}

func TestRelSimRobustWSU(t *testing.T) {
	cfg := datasets.DefaultWSU()
	cfg.Courses = 80
	s := WSUScenario(cfg)
	if bad := RobustnessCheck(s); bad != 0 {
		t.Errorf("RelSim differed on %d/%d queries under WSUC2ALCH", bad, len(s.Queries))
	}
}

func TestRelSimRobustBioMed(t *testing.T) {
	s, _ := BioMedScenario(tinyBioMedCfg())
	if bad := RobustnessCheck(s); bad != 0 {
		t.Errorf("RelSim differed on %d/%d queries under BioMedT", bad, len(s.Queries))
	}
}

// TestBaselinesNotRobust checks the paper's headline negative result:
// PathSim (with the closest simple pattern), RWR and SimRank all change
// their answers under an invertible transformation.
func TestBaselinesNotRobust(t *testing.T) {
	s := DBLPScenario(tinyDBLPCfg(), datasets.DBLP2SIGM(), datasets.DBLP2SIGMInverse())
	rk := buildRankers(s)
	cases := []struct {
		name     string
		src, dst methodRanker
	}{
		{"PathSim", rk.PathSimSrc, rk.PathSimDst},
		{"RWR", rk.RWRSrc, rk.RWRDst},
		{"SimRank", rk.SimRankSrc, rk.SimRankDst},
	}
	for _, c := range cases {
		tau := averageTau(s.Queries, c.src, c.dst)
		if tau.Top10 == 0 {
			t.Errorf("%s top-10 tau = 0; the baseline should not be structurally robust", c.name)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res := table3With(tinyBioMedCfg())
	// RelSim must be at least as effective as HeteSim and strictly beat
	// the random-walk baselines.
	if res.Original["RelSim"] < res.Original["HeteSim"] {
		t.Errorf("RelSim MRR %.3f < HeteSim %.3f", res.Original["RelSim"], res.Original["HeteSim"])
	}
	if res.Original["RelSim"] <= res.Original["RWR"] {
		t.Errorf("RelSim MRR %.3f <= RWR %.3f", res.Original["RelSim"], res.Original["RWR"])
	}
	// RelSim must be unaffected by the transformation.
	if res.Original["RelSim"] != res.UnderT["RelSim"] {
		t.Errorf("RelSim MRR changed across BioMedT: %.3f vs %.3f",
			res.Original["RelSim"], res.UnderT["RelSim"])
	}
}

func TestAverageTauBounds(t *testing.T) {
	s := WSUScenario(func() datasets.WSUConfig {
		c := datasets.DefaultWSU()
		c.Courses = 40
		return c
	}())
	rk := buildRankers(s)
	tau := averageTau(s.Queries[:10], rk.PathSimSrc, rk.PathSimDst)
	if tau.Top5 < 0 || tau.Top5 > 1 || tau.Top10 < 0 || tau.Top10 > 1 {
		t.Errorf("tau out of range: %+v", tau)
	}
}

func TestLossyVariant(t *testing.T) {
	s := DBLPScenario(tinyDBLPCfg(), datasets.DBLP2SIGM(), datasets.DBLP2SIGMInverse())
	l := LossyVariant(s, 0.05, 7)
	if l.Dst.NumEdges() >= s.Dst.NumEdges() {
		t.Error("lossy variant must drop edges")
	}
	if !strings.Contains(l.Name, "0.95") {
		t.Errorf("name = %q", l.Name)
	}
}

func TestFigure5Small(t *testing.T) {
	res := Figure5(Figure5Config{
		ConstraintCounts: []int{1, 3},
		PatternLengths:   []int{4, 5},
		Runs:             1,
		Queries:          1,
		Seed:             3,
		MaxPatterns:      64,
	})
	for _, nc := range res.ConstraintCounts {
		for _, ln := range res.PatternLengths {
			if res.Seconds[nc][ln] < 0 {
				t.Errorf("missing cell %d/%d", nc, ln)
			}
			if res.Patterns[nc][ln] < 1 {
				t.Errorf("|E_p| < 1 at %d/%d", nc, ln)
			}
		}
	}
	if !strings.Contains(res.String(), "Figure 5") {
		t.Error("String must label the figure")
	}
}

func TestAblationSmall(t *testing.T) {
	res := AblationOptimizations(3, []int{4}, 1, 5)
	if res.UnoptimizedPatternCount[4] < res.OptimizedPatternCount[4] {
		t.Errorf("unoptimized |E_p| %.1f < optimized %.1f",
			res.UnoptimizedPatternCount[4], res.OptimizedPatternCount[4])
	}
}

func TestRobustnessTableString(t *testing.T) {
	res := RobustnessResult{
		Title:   "t",
		Columns: []string{"A"},
		Methods: []string{"RelSim"},
		Cells:   map[string]map[string]TauPair{"RelSim": {"A": {0, 0}}},
	}
	if !strings.Contains(res.String(), "RelSim") {
		t.Error("table must render methods")
	}
}

func TestExtraBaselinesShape(t *testing.T) {
	res := ExtraBaselines()
	if res.Taus["RelSim"].Top10 != 0 {
		t.Errorf("RelSim control tau = %v, want 0", res.Taus["RelSim"])
	}
	for _, m := range []string{"CommonNeighbors", "Katz", "P-Rank"} {
		if res.Taus[m].Top10 == 0 {
			t.Errorf("%s top-10 tau = 0; the baseline should not be structurally robust", m)
		}
	}
}

func TestProposition5Shape(t *testing.T) {
	res := Proposition5()
	if res.GeneratedS < 2 || res.GeneratedT < 2 {
		t.Errorf("Algorithm 1 generated too few patterns: S=%d T=%d", res.GeneratedS, res.GeneratedT)
	}
	// The aggregated rankings must be far more stable than any baseline
	// in Table 1 (tau ≈ 0.2-0.7): require < 0.15.
	if res.Tau.Top10 >= 0.15 {
		t.Errorf("aggregated-RelSim tau %.3f too large for Proposition 5", res.Tau.Top10)
	}
	if res.IdenticalTop10 == 0 {
		t.Error("no query kept an identical top-10 under Proposition 5")
	}
}

func TestMASEffectivenessShape(t *testing.T) {
	res := MASEffectiveness()
	kw := res.MRR["PathSim (keyword path)"]
	paper := res.MRR["PathSim (paper path)"]
	agg := res.MRR["RelSim (aggregated)"]
	if kw < 0.9 {
		t.Errorf("keyword meta-path MRR %.3f too low for the planted twins", kw)
	}
	if agg < paper {
		t.Errorf("aggregate MRR %.3f below its weaker component %.3f", agg, paper)
	}
	lo, hi := paper, kw
	if lo > hi {
		lo, hi = hi, lo
	}
	if agg < lo-1e-9 || agg > hi+1e-9 {
		t.Errorf("aggregate MRR %.3f outside its components [%.3f, %.3f]", agg, lo, hi)
	}
}

func TestResultStrings(t *testing.T) {
	t3 := Table3Result{
		Methods:  []string{"RWR"},
		Original: map[string]float64{"RWR": 0.1},
		UnderT:   map[string]float64{"RWR": 0.2},
	}
	if !strings.Contains(t3.String(), "BioMed") || !strings.Contains(t3.String(), "0.100") {
		t.Errorf("Table3 string: %q", t3.String())
	}
	t4 := Table4Result{Seconds: map[string]map[string]map[string]float64{
		"single": {"RelSim": {"DBLP": 1, "BioMed": 2}, "PathSim": {"DBLP": 3, "BioMed": 4}},
		"alg1":   {"RelSim": {"DBLP": 5, "BioMed": 6}, "PathSim": {"DBLP": 7, "BioMed": 8}},
	}}
	if !strings.Contains(t4.String(), "Algorithm 1") {
		t.Errorf("Table4 string: %q", t4.String())
	}
	ab := AblationResult{
		Lengths:                 []int{4},
		Constraints:             3,
		OptimizedSeconds:        map[int]float64{4: 0.1},
		UnoptimizedSeconds:      map[int]float64{4: 0.2},
		OptimizedPatternCount:   map[int]float64{4: 5},
		UnoptimizedPatternCount: map[int]float64{4: 10},
	}
	if !strings.Contains(ab.String(), "constraints=3") {
		t.Errorf("Ablation string: %q", ab.String())
	}
	eb := ExtraBaselinesResult{Transformation: "X", Methods: []string{"Katz"}, Taus: map[string]TauPair{"Katz": {0.1, 0.2}}}
	if !strings.Contains(eb.String(), "Katz") {
		t.Errorf("ExtraBaselines string: %q", eb.String())
	}
	p5 := Proposition5Result{Transformation: "X", PatternS: "a", PatternT: "b", Queries: 3}
	if !strings.Contains(p5.String(), "Proposition 5") {
		t.Errorf("Prop5 string: %q", p5.String())
	}
	mas := MASResult{Methods: []string{"RWR"}, MRR: map[string]float64{"RWR": 0.5}, Queries: 2}
	if !strings.Contains(mas.String(), "MAS") {
		t.Errorf("MAS string: %q", mas.String())
	}
}
