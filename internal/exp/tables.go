package exp

import (
	"fmt"
	"strings"
	"time"

	"relsim/internal/datasets"
	"relsim/internal/eval"
	"relsim/internal/graph"
	"relsim/internal/mapping"
	"relsim/internal/metrics"
	"relsim/internal/pattern"
	"relsim/internal/rre"
	"relsim/internal/sim"
)

// RobustnessResult holds one robustness table (Table 1 or Table 2):
// rows are methods, columns are transformations, each cell an average
// top-5/top-10 normalized Kendall tau.
type RobustnessResult struct {
	Title   string
	Columns []string
	Methods []string
	// Cells[method][column]
	Cells map[string]map[string]TauPair
}

// String renders the table in the paper's layout.
func (r RobustnessResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range r.Columns {
		fmt.Fprintf(&b, " | %-15s", c)
	}
	fmt.Fprintf(&b, "\n%-10s", "method")
	for range r.Columns {
		fmt.Fprintf(&b, " | %-7s %-7s", "top5", "top10")
	}
	b.WriteString("\n")
	for _, m := range r.Methods {
		fmt.Fprintf(&b, "%-10s", m)
		for _, c := range r.Columns {
			t := r.Cells[m][c]
			fmt.Fprintf(&b, " | %-7.3f %-7.3f", t.Top5, t.Top10)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table1 reproduces Table 1: average ranking differences of RWR,
// SimRank and PathSim/HeteSim across the three information-preserving
// transformations DBLP2SIGM, WSUC2ALCH and BioMedT. RelSim is included
// as a fourth row to exhibit the paper's observation that it returns
// identical answers (tau 0) — the paper omits the row for that reason.
func Table1() RobustnessResult {
	scens := []Scenario{
		DBLPScenario(datasets.SmallDBLP(), datasets.DBLP2SIGM(), datasets.DBLP2SIGMInverse()),
		WSUScenario(datasets.DefaultWSU()),
	}
	bm, _ := BioMedScenario(datasets.DefaultBioMed())
	scens = append(scens, bm)
	return robustnessTable("Table 1: average ranking differences (normalized Kendall tau)", scens)
}

// Table2 reproduces Table 2: robustness under transformations that
// modify information — DBLP2SIGMX (adds connector nodes), BioMedT(.95)
// and DBLP2SIGM(.95) (drop 5% of edges after restructuring) — now
// including RelSim.
func Table2() RobustnessResult {
	sx := DBLPScenario(datasets.SmallDBLP(), datasets.DBLP2SIGMX(), datasets.DBLP2SIGMInverse())
	bm, _ := BioMedScenario(datasets.SmallBioMed())
	bmLossy := LossyVariant(bm, 0.05, 101)
	dblp := DBLPScenario(datasets.SmallDBLP(), datasets.DBLP2SIGM(), datasets.DBLP2SIGMInverse())
	dblpLossy := LossyVariant(dblp, 0.05, 103)
	return robustnessTable("Table 2: ranking differences under information-modifying transformations", []Scenario{sx, bmLossy, dblpLossy})
}

func robustnessTable(title string, scens []Scenario) RobustnessResult {
	res := RobustnessResult{
		Title:   title,
		Methods: []string{"RelSim", "RWR", "SimRank", "PathSim"},
		Cells:   map[string]map[string]TauPair{},
	}
	for _, m := range res.Methods {
		res.Cells[m] = map[string]TauPair{}
	}
	for _, s := range scens {
		res.Columns = append(res.Columns, s.Name)
		rk := buildRankers(s)
		res.Cells["RelSim"][s.Name] = averageTau(s.Queries, rk.RelSimSrc, rk.RelSimDst)
		res.Cells["RWR"][s.Name] = averageTau(s.Queries, rk.RWRSrc, rk.RWRDst)
		res.Cells["SimRank"][s.Name] = averageTau(s.Queries, rk.SimRankSrc, rk.SimRankDst)
		res.Cells["PathSim"][s.Name] = averageTau(s.Queries, rk.PathSimSrc, rk.PathSimDst)
	}
	return res
}

// Table3Result holds the effectiveness table: MRR per method over the
// original BioMed graph and its BioMedT transformation.
type Table3Result struct {
	Methods  []string
	Original map[string]float64
	UnderT   map[string]float64
}

// String renders the table in the paper's layout.
func (r Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3: average MRR over BioMed\n")
	fmt.Fprintf(&b, "%-16s", "BioMed dataset")
	for _, m := range r.Methods {
		fmt.Fprintf(&b, " | %-8s", m)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-16s", "original")
	for _, m := range r.Methods {
		fmt.Fprintf(&b, " | %-8.3f", r.Original[m])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-16s", "under BioMedT")
	for _, m := range r.Methods {
		fmt.Fprintf(&b, " | %-8.3f", r.UnderT[m])
	}
	b.WriteString("\n")
	return b.String()
}

// Table3 reproduces Table 3: MRR of RWR, SimRank, HeteSim and RelSim on
// the 30-disease drug-discovery workload, over the original BioMed and
// under BioMedT. HeteSim uses the direct meta-path; RelSim uses the RRE
// that additionally counts indirectly associated phenotypes (and its
// Corollary-1 rewriting on the transformed side), which is what lifts
// its MRR above HeteSim's.
func Table3() Table3Result {
	return table3With(datasets.DefaultBioMed())
}

func table3With(cfg datasets.BioMedConfig) Table3Result {
	scen, data := BioMedScenario(cfg)
	_, _, effect := datasets.BioMedPatterns()
	effectSimple := rre.MustParse(effect)
	// RelSim's richer RRE: direct plus indirect phenotype associations.
	effectRel := rre.MustParse("(dz-ph + ind-dz-ph).ph-pr.tgt-")
	effectRelT, err := rreRewriteForBioMed(effectRel)
	if err != nil {
		panic(err)
	}

	evS, evD := eval.New(scen.Src), eval.New(scen.Dst)
	rwrOpt := sim.DefaultRWR()
	srOpt := sim.DefaultSimRank()
	srS := sim.NewSimRankSampler(evS, srOpt)
	srD := sim.NewSimRankSampler(evD, srOpt)
	cands := scen.Candidates

	rank := map[string][2]methodRanker{
		"RWR": {
			func(q graph.NodeID) sim.Ranking { return sim.RWR(evS, rwrOpt, q, cands) },
			func(q graph.NodeID) sim.Ranking { return sim.RWR(evD, rwrOpt, q, cands) },
		},
		"SimRank": {
			func(q graph.NodeID) sim.Ranking { return srS.Query(q, cands) },
			func(q graph.NodeID) sim.Ranking { return srD.Query(q, cands) },
		},
		"HeteSim": {
			func(q graph.NodeID) sim.Ranking { return sim.HeteSimRRE(evS, effectSimple, q, cands) },
			func(q graph.NodeID) sim.Ranking { return sim.HeteSimRRE(evD, effectSimple, q, cands) },
		},
		"RelSim": {
			func(q graph.NodeID) sim.Ranking { return sim.HeteSimRRE(evS, effectRel, q, cands) },
			func(q graph.NodeID) sim.Ranking { return sim.HeteSimRRE(evD, effectRelT, q, cands) },
		},
	}

	res := Table3Result{
		Methods:  []string{"RWR", "SimRank", "HeteSim", "RelSim"},
		Original: map[string]float64{},
		UnderT:   map[string]float64{},
	}
	for _, m := range res.Methods {
		var orig, under [][]graph.NodeID
		for _, q := range data.Queries {
			orig = append(orig, rank[m][0](q).IDs)
			under = append(under, rank[m][1](q).IDs)
		}
		res.Original[m] = metrics.MRR(orig, data.Relevant)
		res.UnderT[m] = metrics.MRR(under, data.Relevant)
	}
	return res
}

func rreRewriteForBioMed(p *rre.Pattern) (*rre.Pattern, error) {
	return rewriteBioMed(p)
}

// Table4Result holds the efficiency table: average query processing time
// in seconds per method/dataset, in the paper's two modes.
type Table4Result struct {
	// Seconds[mode][method][dataset]; modes are "single" and "alg1".
	Seconds map[string]map[string]map[string]float64
}

// String renders the table in the paper's layout.
func (r Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table 4: average query processing time in seconds\n")
	b.WriteString("            | single pattern      | using Algorithm 1\n")
	b.WriteString("            | DBLP      BioMed    | DBLP      BioMed\n")
	for _, m := range []string{"RelSim", "PathSim"} {
		fmt.Fprintf(&b, "%-11s | %-9.5f %-9.5f | %-9.5f %-9.5f\n", m,
			r.Seconds["single"][m]["DBLP"], r.Seconds["single"][m]["BioMed"],
			r.Seconds["alg1"][m]["DBLP"], r.Seconds["alg1"][m]["BioMed"])
	}
	return b.String()
}

// Table4 reproduces Table 4: query processing time of RelSim vs PathSim
// over DBLP and BioMed, first with exact relationship patterns (§4), then
// with simple input patterns expanded by Algorithm 1 (§5). Following the
// paper's setup, the commuting matrices of the workload's meta-paths up
// to length 3 are materialized before timing.
func Table4() Table4Result {
	res := Table4Result{Seconds: map[string]map[string]map[string]float64{
		"single": {"RelSim": {}, "PathSim": {}},
		"alg1":   {"RelSim": {}, "PathSim": {}},
	}}

	// DBLP: time on the transformed (SIGMOD-Record-style) database. The
	// reference pattern is the proceedings-similarity pattern of the
	// robustness experiments; RelSim runs its Corollary-1 rewriting over
	// the transformed schema, PathSim the closest simple meta-path (§7.3).
	dblp := datasets.DBLP(datasets.FullDBLP())
	dblpT := datasets.DBLP2SIGM().Apply(dblp.Graph)
	dblpQueries := datasets.DegreeWeightedSample(dblp.Graph, "proc", queryCount, 5)
	dblpCands := dblp.Graph.NodesOfType("proc")
	ps, pts := datasets.DBLPPatterns()
	relDBLP, err := mapping.RewritePattern(rre.MustParse(ps), datasets.DBLP2SIGMInverse())
	if err != nil {
		panic(err)
	}
	pathDBLP := rre.MustParse(pts)

	res.Seconds["single"]["RelSim"]["DBLP"] = timeRanker(dblpT, relDBLP, dblpQueries, dblpCands, false)
	res.Seconds["single"]["PathSim"]["DBLP"] = timeRanker(dblpT, pathDBLP, dblpQueries, dblpCands, false)

	// BioMed: time on the BioMedT-transformed database with the
	// disease→drug patterns.
	bio := datasets.BioMed(datasets.DefaultBioMed())
	bioT := datasets.BioMedT().Apply(bio.Graph)
	bioCands := bio.Graph.NodesOfType("drug")
	relBio := rre.MustParse("<dz-ph.parent>.ph-pr.tgt-")
	pathBio := rre.MustParse("dz-ph.parent.ph-pr.tgt-")

	res.Seconds["single"]["RelSim"]["BioMed"] = timeRanker(bioT, relBio, bio.Queries, bioCands, true)
	res.Seconds["single"]["PathSim"]["BioMed"] = timeRanker(bioT, pathBio, bio.Queries, bioCands, true)

	// Algorithm 1 mode: both methods receive the same simple pattern;
	// RelSim expands it against the schema constraints and aggregates.
	relOpt := pattern.Default()
	dblpSimple := rre.MustParse("p-in-.r-a.r-a-.p-in")
	res.Seconds["alg1"]["RelSim"]["DBLP"] = timeAlg1(dblp, dblpSimple, dblpQueries, dblp.Graph.NodesOfType("proc"), false, relOpt)
	res.Seconds["alg1"]["PathSim"]["DBLP"] = timeRanker(dblp.Graph, dblpSimple, dblpQueries, dblp.Graph.NodesOfType("proc"), false)

	bioSimple := rre.MustParse("dz-ph.ph-pr.tgt-")
	res.Seconds["alg1"]["RelSim"]["BioMed"] = timeAlg1(bio.Dataset, bioSimple, bio.Queries, bioCands, true, relOpt)
	res.Seconds["alg1"]["PathSim"]["BioMed"] = timeRanker(bio.Graph, bioSimple, bio.Queries, bioCands, true)

	return res
}

// timeRanker measures the average per-query time of ranking with a
// single pattern, with the pattern's simple sub-patterns up to length 3
// pre-materialized (the Table 4 setting).
func timeRanker(g *graph.Graph, p *rre.Pattern, queries, cands []graph.NodeID, asymmetric bool) float64 {
	ev := eval.New(g)
	materializeWorkload(ev, p)
	start := time.Now()
	for _, q := range queries {
		if asymmetric {
			sim.HeteSimRRE(ev, p, q, cands)
		} else {
			sim.RelSim(ev, p, q, cands)
		}
	}
	return time.Since(start).Seconds() / float64(len(queries))
}

// timeAlg1 measures the average per-query time of aggregated RelSim with
// Algorithm 1 pattern generation included (run once per workload, as the
// generated set is query-independent but its cost is part of answering).
func timeAlg1(ds datasets.Dataset, p *rre.Pattern, queries, cands []graph.NodeID, asymmetric bool, opt pattern.Options) float64 {
	ev := eval.New(ds.Graph)
	materializeWorkload(ev, p)
	start := time.Now()
	ps, err := pattern.Generate(ds.Schema, p, opt)
	if err != nil {
		panic(err)
	}
	for _, q := range queries {
		if asymmetric {
			for _, gp := range ps {
				sim.HeteSimRRE(ev, gp, q, cands)
			}
		} else {
			sim.RelSimAggregate(ev, ps, q, cands)
		}
	}
	return time.Since(start).Seconds() / float64(len(queries))
}

// materializeWorkload pre-computes the commuting matrices of every
// simple prefix (length ≤ 3) of the pattern's step sequence, standing in
// for the paper's "all meta-paths up to size 3 materialized" (the full
// cross product is memory-prohibitive on commodity hardware; only the
// workload-relevant subset affects the timings).
func materializeWorkload(ev *eval.Evaluator, p *rre.Pattern) {
	steps, ok := p.StripSkips().Steps()
	if !ok {
		// Collect the labels and materialize single-step matrices.
		for _, l := range p.Labels() {
			ev.Materialize(rre.Label(l), rre.Rev(rre.Label(l)))
		}
		return
	}
	for i := 0; i < len(steps); i++ {
		for j := i + 1; j <= len(steps) && j-i <= 3; j++ {
			ev.Materialize(rre.FromSteps(steps[i:j]))
		}
	}
}
