package exp

import (
	"fmt"
	"strings"

	"relsim/internal/datasets"
	"relsim/internal/eval"
	"relsim/internal/graph"
	"relsim/internal/metrics"
	"relsim/internal/rre"
	"relsim/internal/sim"
)

// MASResult holds the MAS effectiveness study (§7.2 evaluates
// effectiveness "over BioMed and MAS databases" but prints only BioMed
// numbers; this reconstructs the MAS side with planted twin areas).
type MASResult struct {
	Methods []string
	MRR     map[string]float64
	NDCG10  map[string]float64
	Queries int
}

// String renders the study.
func (r MASResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MAS effectiveness over %d twin-area queries\n", r.Queries)
	fmt.Fprintf(&b, "%-28s %-7s %s\n", "method", "MRR", "nDCG@10")
	for _, m := range r.Methods {
		fmt.Fprintf(&b, "%-28s %-7.3f %.3f\n", m, r.MRR[m], r.NDCG10[m])
	}
	return b.String()
}

// MASEffectiveness ranks, for each twin area, the most similar area by
// three pattern choices: the direct keyword meta-path, the longer
// paper-keyword meta-path, and RelSim aggregating both (§4's point that
// a holistic similarity uses several relationship types). RWR is the
// structure-free control.
func MASEffectiveness() MASResult {
	data := datasets.MAS(datasets.DefaultMAS())
	g := data.Graph
	ev := eval.New(g)
	areas := g.NodesOfType("area")

	kwPath := rre.MustParse("a-kw.a-kw-")
	paperPath := rre.MustParse("c-a-.p-in-.p-kw.p-kw-.p-in.c-a")
	both := []*rre.Pattern{kwPath, paperPath}

	rankers := map[string]methodRanker{
		"PathSim (keyword path)": func(q graph.NodeID) sim.Ranking {
			r, err := sim.PathSim(ev, kwPath, q, areas)
			if err != nil {
				panic(err)
			}
			return r
		},
		"PathSim (paper path)": func(q graph.NodeID) sim.Ranking {
			r, err := sim.PathSim(ev, paperPath, q, areas)
			if err != nil {
				panic(err)
			}
			return r
		},
		"RelSim (aggregated)": func(q graph.NodeID) sim.Ranking {
			return sim.RelSimAggregate(ev, both, q, areas)
		},
		"RWR": func(q graph.NodeID) sim.Ranking {
			return sim.RWR(ev, sim.DefaultRWR(), q, areas)
		},
	}

	res := MASResult{
		Methods: []string{"PathSim (keyword path)", "PathSim (paper path)", "RelSim (aggregated)", "RWR"},
		MRR:     map[string]float64{},
		NDCG10:  map[string]float64{},
		Queries: len(data.Queries),
	}
	for name, rank := range rankers {
		var lists [][]graph.NodeID
		var ndcg []float64
		for i, q := range data.Queries {
			r := rank(q)
			lists = append(lists, r.IDs)
			ndcg = append(ndcg, metrics.NDCGAtK(r.IDs, data.Relevant[i], 10))
		}
		res.MRR[name] = metrics.MRR(lists, data.Relevant)
		res.NDCG10[name] = metrics.Mean(ndcg)
	}
	return res
}
