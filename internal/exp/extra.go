package exp

import (
	"fmt"
	"strings"

	"relsim/internal/datasets"
	"relsim/internal/eval"
	"relsim/internal/graph"
	"relsim/internal/mapping"
	"relsim/internal/metrics"
	"relsim/internal/pattern"
	"relsim/internal/rre"
	"relsim/internal/schema"
	"relsim/internal/sim"
)

// ExtraBaselinesResult holds the supplementary robustness study over the
// further §4.1 baselines (common neighbors, Katz, P-Rank), which the
// paper argues are equally structure-sensitive but does not measure.
type ExtraBaselinesResult struct {
	Transformation string
	Methods        []string
	Taus           map[string]TauPair
}

// String renders the supplementary table.
func (r ExtraBaselinesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extra baselines under %s (normalized Kendall tau)\n", r.Transformation)
	b.WriteString("method           | top5    top10\n")
	for _, m := range r.Methods {
		t := r.Taus[m]
		fmt.Fprintf(&b, "%-16s | %-7.3f %-7.3f\n", m, t.Top5, t.Top10)
	}
	return b.String()
}

// ExtraBaselines measures common neighbors, the Katz β index and P-Rank
// across DBLP2SIGM on a reduced DBLP instance (P-Rank materializes a
// dense matrix), alongside RelSim as the control.
func ExtraBaselines() ExtraBaselinesResult {
	cfg := datasets.SmallDBLP()
	cfg.Procs = 40
	cfg.AuthorsPool = 300
	cfg.PapersPerProc = [2]int{4, 10}
	s := DBLPScenario(cfg, datasets.DBLP2SIGM(), datasets.DBLP2SIGMInverse())

	evS, evD := eval.New(s.Src), eval.New(s.Dst)
	katz := sim.DefaultKatz()
	prS, err := sim.NewPRank(evS, sim.DefaultSimRank(), 0.5, 8192)
	if err != nil {
		panic(err)
	}
	prD, err := sim.NewPRank(evD, sim.DefaultSimRank(), 0.5, 8192)
	if err != nil {
		panic(err)
	}

	res := ExtraBaselinesResult{
		Transformation: s.Name,
		Methods:        []string{"CommonNeighbors", "Katz", "P-Rank", "RelSim"},
		Taus:           map[string]TauPair{},
	}
	queries := s.Queries
	if len(queries) > 30 {
		queries = queries[:30]
	}
	res.Taus["CommonNeighbors"] = averageTau(queries,
		func(q graph.NodeID) sim.Ranking { return sim.CommonNeighbors(evS, q, s.Candidates) },
		func(q graph.NodeID) sim.Ranking { return sim.CommonNeighbors(evD, q, s.Candidates) })
	res.Taus["Katz"] = averageTau(queries,
		func(q graph.NodeID) sim.Ranking { return sim.Katz(evS, katz, q, s.Candidates) },
		func(q graph.NodeID) sim.Ranking { return sim.Katz(evD, katz, q, s.Candidates) })
	res.Taus["P-Rank"] = averageTau(queries,
		func(q graph.NodeID) sim.Ranking { return prS.Query(q, s.Candidates) },
		func(q graph.NodeID) sim.Ranking { return prD.Query(q, s.Candidates) })
	res.Taus["RelSim"] = averageTau(queries,
		func(q graph.NodeID) sim.Ranking { return sim.RelSim(evS, s.PatternS, q, s.Candidates) },
		func(q graph.NodeID) sim.Ranking { return sim.RelSim(evD, s.PatternTRel, q, s.Candidates) })
	return res
}

// Proposition5Result reports how close the aggregated Algorithm-1
// RelSim scores are across a transformation when the user submits the
// corresponding simple patterns on each side (§5, Proposition 5).
type Proposition5Result struct {
	Transformation string
	PatternS       string
	PatternT       string
	GeneratedS     int
	GeneratedT     int
	Tau            TauPair
	IdenticalTop10 int
	Queries        int
}

// String renders the check.
func (r Proposition5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Proposition 5 check under %s\n", r.Transformation)
	fmt.Fprintf(&b, "input over S: %s  (|E_p| = %d)\n", r.PatternS, r.GeneratedS)
	fmt.Fprintf(&b, "input over T: %s  (|E_p| = %d)\n", r.PatternT, r.GeneratedT)
	fmt.Fprintf(&b, "aggregated-RelSim tau: top5 %.3f, top10 %.3f\n", r.Tau.Top5, r.Tau.Top10)
	fmt.Fprintf(&b, "identical top-10 lists: %d/%d queries\n", r.IdenticalTop10, r.Queries)
	return b.String()
}

// Proposition5 runs the §5 usability pipeline on both sides of
// DBLP2SIGM: the S-side schema carries the paper's constraint, the
// T-side schema carries the constraints induced by the composition
// Σ∘Σ⁻¹ (Proposition 1 applied in the reverse direction), and both
// sides aggregate the Algorithm-1 pattern sets. Proposition 5 predicts
// matching aggregate scores for corresponding inputs.
func Proposition5() Proposition5Result {
	cfg := datasets.SmallDBLP()
	cfg.Procs = 40
	cfg.AuthorsPool = 300
	cfg.PapersPerProc = [2]int{4, 10}
	ds := datasets.DBLP(cfg)
	t, inv := datasets.DBLP2SIGM(), datasets.DBLP2SIGMInverse()
	dst := t.Apply(ds.Graph)

	// T-side constraints: compose the inverse with the forward mapping
	// to obtain the tgds every transformed instance satisfies.
	sigmaT, _ := mapping.Compose(inv, t)
	schemaT := schema.New(t.TargetLabels(), sigmaT...)

	pS := rre.MustParse("p-in-.r-a.r-a-.p-in")
	pT := rre.MustParse("r-a.r-a-")

	opt := pattern.Default()
	esS, err := pattern.Generate(ds.Schema, pS, opt)
	if err != nil {
		panic(err)
	}
	esT, err := pattern.Generate(schemaT, pT, opt)
	if err != nil {
		panic(err)
	}

	evS, evD := eval.New(ds.Graph), eval.New(dst)
	queries := datasets.DegreeWeightedSample(ds.Graph, "proc", 30, cfg.Seed+1)
	cands := ds.Graph.NodesOfType("proc")

	var t5, t10 []float64
	identical := 0
	for _, q := range queries {
		a := sim.RelSimAggregate(evS, esS, q, cands)
		b := sim.RelSimAggregate(evD, esT, q, cands)
		t5 = append(t5, metrics.KendallTauTopK(a.IDs, b.IDs, 5))
		t10 = append(t10, metrics.KendallTauTopK(a.IDs, b.IDs, 10))
		if metrics.ListsEqual(a.TopK(10).IDs, b.TopK(10).IDs) {
			identical++
		}
	}
	return Proposition5Result{
		Transformation: t.Name,
		PatternS:       pS.String(),
		PatternT:       pT.String(),
		GeneratedS:     len(esS),
		GeneratedT:     len(esT),
		Tau:            TauPair{Top5: metrics.Mean(t5), Top10: metrics.Mean(t10)},
		IdenticalTop10: identical,
		Queries:        len(queries),
	}
}
