package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"relsim/internal/datasets"
	"relsim/internal/eval"
	"relsim/internal/mapping"
	"relsim/internal/pattern"
	"relsim/internal/rre"
	"relsim/internal/schema"
	"relsim/internal/sim"
)

func rewriteBioMed(p *rre.Pattern) (*rre.Pattern, error) {
	return mapping.RewritePattern(p, datasets.BioMedTInverse())
}

// Figure5Result holds the scalability study: average RelSim query time
// (Algorithm 1 mode) for each (number of constraints, pattern length)
// cell, in seconds.
type Figure5Result struct {
	ConstraintCounts []int
	PatternLengths   []int
	// Seconds[#constraints][length]; NaN-free: missing cells are -1.
	Seconds map[int]map[int]float64
	// Patterns[#constraints][length] is the average |E_p|.
	Patterns map[int]map[int]float64
}

// String renders the figure's series as rows.
func (r Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: RelSim (Algorithm 1) running time in seconds\n")
	fmt.Fprintf(&b, "%-12s", "#constraints")
	for _, l := range r.PatternLengths {
		fmt.Fprintf(&b, " | len=%-6d", l)
	}
	b.WriteString("\n")
	for _, c := range r.ConstraintCounts {
		fmt.Fprintf(&b, "%-12d", c)
		for _, l := range r.PatternLengths {
			s := r.Seconds[c][l]
			if s < 0 {
				fmt.Fprintf(&b, " | %-10s", "-")
			} else {
				fmt.Fprintf(&b, " | %-10.4f", s)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure5Config tunes the scalability experiment; the zero value is
// replaced by the paper's grid (1/5/10/20/40 constraints, lengths 4–10,
// 5 runs) with laptop-sized caps.
type Figure5Config struct {
	ConstraintCounts []int
	PatternLengths   []int
	Runs             int
	Queries          int
	Seed             int64
	MaxPatterns      int
}

func (c Figure5Config) withDefaults() Figure5Config {
	if len(c.ConstraintCounts) == 0 {
		c.ConstraintCounts = []int{1, 5, 10, 20, 40}
	}
	if len(c.PatternLengths) == 0 {
		c.PatternLengths = []int{4, 5, 6, 7, 8, 9, 10}
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Queries == 0 {
		c.Queries = 3
	}
	if c.Seed == 0 {
		c.Seed = 23
	}
	if c.MaxPatterns == 0 {
		c.MaxPatterns = 1024
	}
	return c
}

// Figure5 reproduces the Figure 5 scalability study: RelSim with
// Algorithm 1 over BioMed, with randomly generated tgd constraints
// (premises of 2–5 atoms built by coin-flipping edge labels, single
// conclusion atom, §7.3) and random simple input patterns of length 4 to
// 10, averaging over cfg.Runs runs. The §6 optimizations are on.
func Figure5(cfg Figure5Config) Figure5Result {
	cfg = cfg.withDefaults()
	data := datasets.BioMed(datasets.SmallBioMed())
	res := Figure5Result{
		ConstraintCounts: cfg.ConstraintCounts,
		PatternLengths:   cfg.PatternLengths,
		Seconds:          map[int]map[int]float64{},
		Patterns:         map[int]map[int]float64{},
	}
	opt := pattern.Default()
	opt.MaxPatterns = cfg.MaxPatterns

	for _, nc := range cfg.ConstraintCounts {
		res.Seconds[nc] = map[int]float64{}
		res.Patterns[nc] = map[int]float64{}
		for _, ln := range cfg.PatternLengths {
			var total time.Duration
			var totalPatterns int
			for run := 0; run < cfg.Runs; run++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*nc+10*ln+run)))
				s := randomSchema(data.Schema.Labels, nc, rng)
				p := randomSimplePattern(data.Schema.Labels, ln, rng)
				ev := eval.New(data.Graph)
				queries := data.Queries
				if len(queries) > cfg.Queries {
					queries = queries[:cfg.Queries]
				}
				start := time.Now()
				ps, err := pattern.Generate(s, p, opt)
				if err != nil {
					panic(err)
				}
				for _, q := range queries {
					sim.RelSimAggregate(ev, ps, q, nil)
				}
				total += time.Since(start) / time.Duration(len(queries))
				totalPatterns += len(ps)
			}
			res.Seconds[nc][ln] = total.Seconds() / float64(cfg.Runs)
			res.Patterns[nc][ln] = float64(totalPatterns) / float64(cfg.Runs)
		}
	}
	return res
}

// randomSchema builds a schema over the given labels with n random tgd
// constraints. Each premise is a random acyclic conjunction of 2–5
// single-label atoms (a random tree over fresh variables, echoing the
// paper's coin-flip construction); the conclusion uses a label drawn
// from the premise so the constraint is non-easy and exercises
// Algorithm 2.
func randomSchema(labels []string, n int, rng *rand.Rand) *schema.Schema {
	cs := make([]schema.Constraint, 0, n)
	for i := 0; i < n; i++ {
		nAtoms := 2 + rng.Intn(4)
		vars := []schema.Var{"x0"}
		var atoms []schema.Atom
		var usedLabels []string
		for a := 0; a < nAtoms; a++ {
			attach := vars[rng.Intn(len(vars))]
			fresh := schema.Var(fmt.Sprintf("x%d", len(vars)))
			vars = append(vars, fresh)
			l := labels[rng.Intn(len(labels))]
			usedLabels = append(usedLabels, l)
			if rng.Intn(2) == 0 {
				atoms = append(atoms, schema.At(attach, l, fresh))
			} else {
				atoms = append(atoms, schema.At(fresh, l, attach))
			}
		}
		concl := usedLabels[rng.Intn(len(usedLabels))]
		from := vars[rng.Intn(len(vars))]
		to := vars[rng.Intn(len(vars))]
		for to == from && len(vars) > 1 {
			to = vars[rng.Intn(len(vars))]
		}
		cs = append(cs, schema.TGD(fmt.Sprintf("rand%d", i), atoms, from, concl, to))
	}
	return schema.New(labels, cs...)
}

// randomSimplePattern builds a random simple pattern of the given length
// over the label set, each step forward or reversed uniformly.
func randomSimplePattern(labels []string, length int, rng *rand.Rand) *rre.Pattern {
	steps := make([]rre.Step, length)
	for i := range steps {
		steps[i] = rre.Step{
			Label:   labels[rng.Intn(len(labels))],
			Reverse: rng.Intn(2) == 1,
		}
	}
	return rre.FromSteps(steps)
}

// AblationResult compares Algorithm 1 with and without the §6
// optimizations on the Figure 5 setup.
type AblationResult struct {
	Lengths                 []int
	Constraints             int
	OptimizedSeconds        map[int]float64
	UnoptimizedSeconds      map[int]float64
	OptimizedPatternCount   map[int]float64
	UnoptimizedPatternCount map[int]float64
}

// String renders the ablation comparison.
func (r AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: §6 optimizations (constraints=%d)\n", r.Constraints)
	b.WriteString("len | optimized s | unoptimized s | |E_p| opt | |E_p| unopt\n")
	for _, l := range r.Lengths {
		fmt.Fprintf(&b, "%-3d | %-11.4f | %-13.4f | %-9.1f | %-11.1f\n",
			l, r.OptimizedSeconds[l], r.UnoptimizedSeconds[l],
			r.OptimizedPatternCount[l], r.UnoptimizedPatternCount[l])
	}
	return b.String()
}

// AblationOptimizations measures pattern-generation time and |E_p| with
// the §6 optimizations on vs off (the paper reports the unoptimized
// variant "takes days" beyond 5 constraints; the caps keep it bounded
// here while preserving the gap's direction).
func AblationOptimizations(constraints int, lengths []int, runs int, seed int64) AblationResult {
	if len(lengths) == 0 {
		lengths = []int{4, 5, 6, 7}
	}
	if runs == 0 {
		runs = 3
	}
	data := datasets.BioMed(datasets.SmallBioMed())
	res := AblationResult{
		Lengths:                 lengths,
		Constraints:             constraints,
		OptimizedSeconds:        map[int]float64{},
		UnoptimizedSeconds:      map[int]float64{},
		OptimizedPatternCount:   map[int]float64{},
		UnoptimizedPatternCount: map[int]float64{},
	}
	for _, ln := range lengths {
		for _, optimized := range []bool{true, false} {
			opt := pattern.Unoptimized()
			if optimized {
				opt = pattern.Default()
			}
			opt.MaxPatterns = 1024
			var total time.Duration
			var count int
			for run := 0; run < runs; run++ {
				rng := rand.New(rand.NewSource(seed + int64(100*ln+run)))
				s := randomSchema(data.Schema.Labels, constraints, rng)
				p := randomSimplePattern(data.Schema.Labels, ln, rng)
				start := time.Now()
				ps, err := pattern.Generate(s, p, opt)
				if err != nil {
					panic(err)
				}
				total += time.Since(start)
				count += len(ps)
			}
			if optimized {
				res.OptimizedSeconds[ln] = total.Seconds() / float64(runs)
				res.OptimizedPatternCount[ln] = float64(count) / float64(runs)
			} else {
				res.UnoptimizedSeconds[ln] = total.Seconds() / float64(runs)
				res.UnoptimizedPatternCount[ln] = float64(count) / float64(runs)
			}
		}
	}
	return res
}

// RobustnessCheck verifies Definition 1 operationally on a scenario:
// RelSim must return exactly equal ranked lists for every query across
// the transformation. It returns the number of queries with any
// difference (0 means robust).
func RobustnessCheck(s Scenario) int {
	rk := buildRankers(s)
	bad := 0
	for _, q := range s.Queries {
		a, b := rk.RelSimSrc(q), rk.RelSimDst(q)
		if len(a.IDs) != len(b.IDs) {
			bad++
			continue
		}
		for i := range a.IDs {
			if a.IDs[i] != b.IDs[i] {
				bad++
				break
			}
		}
	}
	return bad
}
