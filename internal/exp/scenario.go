// Package exp drives the paper's empirical study (§7): it assembles the
// datasets, transformations, query workloads and algorithms, and
// regenerates every table and figure of the evaluation section. Each
// Table*/Figure* function returns a result struct whose String method
// prints rows shaped like the paper's.
package exp

import (
	"fmt"

	"relsim/internal/datasets"
	"relsim/internal/eval"
	"relsim/internal/graph"
	"relsim/internal/mapping"
	"relsim/internal/metrics"
	"relsim/internal/rre"
	"relsim/internal/sim"
)

// Scenario is one robustness experiment: a source database, its
// transformed counterpart, a query workload, and the relationship
// patterns each method uses on each side.
type Scenario struct {
	Name       string
	Src, Dst   *graph.Graph
	Queries    []graph.NodeID
	Candidates []graph.NodeID // answer domain (same ids on both sides)
	// PatternS is the relationship pattern over the source schema;
	// PatternTSimple the closest simple meta-path over the target schema
	// (what a PathSim/HeteSim user would pick, §7.3); PatternTRel the
	// Corollary-1 rewriting of PatternS used by RelSim.
	PatternS, PatternTSimple, PatternTRel *rre.Pattern
	// Asymmetric selects HeteSim instead of PathSim (disease→drug paths).
	Asymmetric bool
}

// queryCount is the paper's workload size for the bibliographic and
// course datasets.
const queryCount = 100

// DBLPScenario builds the DBLP2SIGM robustness scenario on the small
// DBLP instance (§7.1). The transformation may be swapped (DBLP2SIGMX)
// via t; inv must be its inverse.
func DBLPScenario(cfg datasets.DBLPConfig, t, inv mapping.Transformation) Scenario {
	ds := datasets.DBLP(cfg)
	dst := t.Apply(ds.Graph)
	ps, pts := datasets.DBLPPatterns()
	patternS := rre.MustParse(ps)
	rel, err := mapping.RewritePattern(patternS, inv)
	if err != nil {
		panic(fmt.Sprintf("exp: rewrite DBLP pattern: %v", err))
	}
	return Scenario{
		Name:           t.Name,
		Src:            ds.Graph,
		Dst:            dst,
		Queries:        datasets.DegreeWeightedSample(ds.Graph, "proc", queryCount, cfg.Seed+1),
		Candidates:     ds.Graph.NodesOfType("proc"),
		PatternS:       patternS,
		PatternTSimple: rre.MustParse(pts),
		PatternTRel:    rel,
	}
}

// WSUScenario builds the WSUC2ALCH robustness scenario (§7.1).
func WSUScenario(cfg datasets.WSUConfig) Scenario {
	ds := datasets.WSU(cfg)
	t, inv := datasets.WSUC2ALCH(), datasets.WSUC2ALCHInverse()
	dst := t.Apply(ds.Graph)
	ps, pts := datasets.WSUPatterns()
	patternS := rre.MustParse(ps)
	rel, err := mapping.RewritePattern(patternS, inv)
	if err != nil {
		panic(fmt.Sprintf("exp: rewrite WSU pattern: %v", err))
	}
	return Scenario{
		Name:           t.Name,
		Src:            ds.Graph,
		Dst:            dst,
		Queries:        datasets.DegreeWeightedSample(ds.Graph, "course", queryCount, cfg.Seed+1),
		Candidates:     ds.Graph.NodesOfType("course"),
		PatternS:       patternS,
		PatternTSimple: rre.MustParse(pts),
		PatternTRel:    rel,
	}
}

// BioMedScenario builds the BioMedT robustness scenario (§7.1) with the
// 30-disease workload.
func BioMedScenario(cfg datasets.BioMedConfig) (Scenario, datasets.BioMedData) {
	data := datasets.BioMed(cfg)
	t, inv := datasets.BioMedT(), datasets.BioMedTInverse()
	dst := t.Apply(data.Graph)
	rs, rct, _ := datasets.BioMedPatterns()
	patternS := rre.MustParse(rs)
	rel, err := mapping.RewritePattern(patternS, inv)
	if err != nil {
		panic(fmt.Sprintf("exp: rewrite BioMed pattern: %v", err))
	}
	return Scenario{
		Name:           t.Name,
		Src:            data.Graph,
		Dst:            dst,
		Queries:        data.Queries,
		Candidates:     data.Graph.NodesOfType("drug"),
		PatternS:       patternS,
		PatternTSimple: rre.MustParse(rct),
		PatternTRel:    rel,
		Asymmetric:     true,
	}, data
}

// LossyVariant returns a copy of s whose destination graph has the given
// fraction of its edges removed (the "(.95)" transformations).
func LossyVariant(s Scenario, fraction float64, seed int64) Scenario {
	s.Name = fmt.Sprintf("%s(%.2f)", s.Name, 1-fraction)
	s.Dst = datasets.RemoveRandomEdges(s.Dst, fraction, seed)
	return s
}

// TauPair holds the average normalized Kendall tau at top-5 and top-10.
type TauPair struct {
	Top5, Top10 float64
}

// methodRanker produces a ranking for one query on one side of a
// scenario.
type methodRanker func(q graph.NodeID) sim.Ranking

// averageTau runs the workload through the two rankers and averages the
// top-5/top-10 normalized Kendall tau between the paired rankings.
func averageTau(queries []graph.NodeID, onSrc, onDst methodRanker) TauPair {
	var t5, t10 []float64
	for _, q := range queries {
		a := onSrc(q)
		b := onDst(q)
		t5 = append(t5, metrics.KendallTauTopK(a.IDs, b.IDs, 5))
		t10 = append(t10, metrics.KendallTauTopK(a.IDs, b.IDs, 10))
	}
	return TauPair{Top5: metrics.Mean(t5), Top10: metrics.Mean(t10)}
}

// scenarioRankers builds the per-method rankers for both sides of a
// scenario. SimRank uses the Monte Carlo sampler (exact SimRank is
// infeasible at experiment scale, as the paper also reports); RWR uses
// the paper's restart probability 0.8.
type scenarioRankers struct {
	RWRSrc, RWRDst         methodRanker
	SimRankSrc, SimRankDst methodRanker
	PathSimSrc, PathSimDst methodRanker
	RelSimSrc, RelSimDst   methodRanker
}

func buildRankers(s Scenario) scenarioRankers {
	evS, evD := eval.New(s.Src), eval.New(s.Dst)
	rwrOpt := sim.DefaultRWR()
	srOpt := sim.DefaultSimRank()
	srS := sim.NewSimRankSampler(evS, srOpt)
	srD := sim.NewSimRankSampler(evD, srOpt)

	pathRanker := func(ev *eval.Evaluator, p *rre.Pattern) methodRanker {
		if s.Asymmetric {
			return func(q graph.NodeID) sim.Ranking {
				r := sim.HeteSimRRE(ev, p, q, s.Candidates)
				return r
			}
		}
		return func(q graph.NodeID) sim.Ranking {
			r, err := sim.PathSim(ev, p, q, s.Candidates)
			if err != nil {
				panic(err)
			}
			return r
		}
	}

	return scenarioRankers{
		RWRSrc:     func(q graph.NodeID) sim.Ranking { return sim.RWR(evS, rwrOpt, q, s.Candidates) },
		RWRDst:     func(q graph.NodeID) sim.Ranking { return sim.RWR(evD, rwrOpt, q, s.Candidates) },
		SimRankSrc: func(q graph.NodeID) sim.Ranking { return srS.Query(q, s.Candidates) },
		SimRankDst: func(q graph.NodeID) sim.Ranking { return srD.Query(q, s.Candidates) },
		PathSimSrc: pathRanker(evS, s.PatternS),
		PathSimDst: pathRanker(evD, s.PatternTSimple),
		// For asymmetric paths Equation 1's denominator vanishes, so —
		// like the paper, which switches to HeteSim on BioMed — RelSim
		// scores the RRE pattern with the HeteSim formula there.
		RelSimSrc: relRanker(evS, s.PatternS, s),
		RelSimDst: relRanker(evD, s.PatternTRel, s),
	}
}

func relRanker(ev *eval.Evaluator, p *rre.Pattern, s Scenario) methodRanker {
	if s.Asymmetric {
		return func(q graph.NodeID) sim.Ranking { return sim.HeteSimRRE(ev, p, q, s.Candidates) }
	}
	return func(q graph.NodeID) sim.Ranking { return sim.RelSim(ev, p, q, s.Candidates) }
}
