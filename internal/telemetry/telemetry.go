// Package telemetry is a zero-dependency metrics registry with
// Prometheus text-format exposition — the instrumentation backbone of
// the serving stack.
//
// A Registry holds metric families (counter, gauge, histogram), each
// with a fixed label schema. Families fan out into children per label
// value tuple; children are lock-free atomics on the hot path, so a
// counter increment or histogram observation costs one or two atomic
// ops. Snapshot-style values (a store version, replication lag) are
// registered as GaugeFunc/CounterFunc callbacks evaluated at scrape
// time, so subsystems that already keep their own counters expose them
// without double bookkeeping.
//
// Every constructor is get-or-create: registering the same name again
// with an identical schema returns the existing family, while a
// conflicting re-registration panics — a programming error, like a
// duplicate flag. The nil *Registry is a valid no-op sink: every
// derived Vec and Metric is nil and every method on them no-ops, which
// is how instrumentation is disabled wholesale without branching at
// call sites.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric families.
type Kind int

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// DefBuckets are the default latency histogram bounds in seconds,
// spanning sub-millisecond cache hits to multi-second cold
// materializations.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry is a set of metric families. Safe for concurrent use; the
// nil registry is a valid no-op sink.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed kind and label schema.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, +Inf implicit

	// fn, when set, makes this a callback family: a single unlabeled
	// series whose value is computed at scrape time.
	fn func() float64

	mu       sync.Mutex
	children map[string]*Metric
}

// Vec is a handle to a labeled family; With resolves one label value
// tuple to its Metric. The nil Vec resolves to the nil Metric.
type Vec struct{ fam *family }

// Metric is one series: a counter, gauge, or histogram child. All
// methods are safe for concurrent use and no-ops on the nil Metric.
type Metric struct {
	fam    *family
	values []string // label values, aligned with fam.labels

	bits atomic.Uint64 // float64 bits: counter/gauge value, histogram sum

	// Histogram state: one count per bucket (non-cumulative; exposition
	// accumulates) plus the +Inf overflow at index len(buckets).
	counts []atomic.Uint64
	count  atomic.Uint64
}

// register is the shared get-or-create path.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels []string, fn func() float64) *family {
	if r == nil {
		return nil
	}
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("telemetry: conflicting re-registration of %q", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		fn:       fn,
		children: make(map[string]*Metric),
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) a counter family with the given label
// names.
func (r *Registry) Counter(name, help string, labels ...string) *Vec {
	f := r.register(name, help, KindCounter, nil, labels, nil)
	if f == nil {
		return nil
	}
	return &Vec{fam: f}
}

// Gauge registers (or returns) a gauge family with the given label
// names.
func (r *Registry) Gauge(name, help string, labels ...string) *Vec {
	f := r.register(name, help, KindGauge, nil, labels, nil)
	if f == nil {
		return nil
	}
	return &Vec{fam: f}
}

// Histogram registers (or returns) a histogram family. buckets are the
// ascending upper bounds (the +Inf bucket is implicit); nil uses
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Vec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
		}
	}
	f := r.register(name, help, KindHistogram, buckets, labels, nil)
	if f == nil {
		return nil
	}
	return &Vec{fam: f}
}

// GaugeFunc registers an unlabeled gauge whose value is fn() at scrape
// time — the bridge for subsystems that already keep their own state
// (store version, replication lag, cache occupancy).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, nil, nil, fn)
}

// CounterFunc registers an unlabeled counter read from fn() at scrape
// time. fn must be monotonically non-decreasing for the exposition to
// be honest; the registry does not enforce it.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, KindCounter, nil, nil, fn)
}

// With resolves the child series for the given label values (one per
// label name, in registration order). Children are created on first
// use and cached; With on the nil Vec returns the nil Metric.
func (v *Vec) With(values ...string) *Metric {
	if v == nil || v.fam == nil {
		return nil
	}
	f := v.fam
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m := &Metric{fam: f, values: append([]string(nil), values...)}
	if f.kind == KindHistogram {
		m.counts = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.children[key] = m
	return m
}

// childKey joins label values unambiguously (values may contain any
// byte, so a plain join could collide).
func childKey(values []string) string {
	key := ""
	for _, v := range values {
		key += fmt.Sprintf("%d:%s,", len(v), v)
	}
	return key
}

// Inc adds 1 to a counter or gauge.
func (m *Metric) Inc() { m.Add(1) }

// Dec subtracts 1 from a gauge.
func (m *Metric) Dec() { m.Add(-1) }

// Add adds delta to a counter or gauge (negative deltas are the
// caller's contract: gauges only).
func (m *Metric) Add(delta float64) {
	if m == nil {
		return
	}
	for {
		old := m.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if m.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Set sets a gauge to v.
func (m *Metric) Set(v float64) {
	if m == nil {
		return
	}
	m.bits.Store(math.Float64bits(v))
}

// Observe records one histogram observation.
func (m *Metric) Observe(v float64) {
	if m == nil {
		return
	}
	i := sort.SearchFloat64s(m.fam.buckets, v) // first bucket with bound >= v
	m.counts[i].Add(1)
	m.count.Add(1)
	m.Add(v) // bits doubles as the sum for histograms
}

// Value returns the current counter/gauge value (histograms: the sum of
// observations). 0 on the nil Metric.
func (m *Metric) Value() float64 {
	if m == nil {
		return 0
	}
	return math.Float64frombits(m.bits.Load())
}

// Count returns the number of observations of a histogram.
func (m *Metric) Count() uint64 {
	if m == nil {
		return 0
	}
	return m.count.Load()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
