package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestExpositionLints builds a registry exercising every metric kind —
// including label values that need escaping — and validates the full
// exposition output with the shared Lint checker.
func TestExpositionLints(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests served", "endpoint")
	c.With("search").Add(3)
	c.With("batch").Inc()
	g := r.Gauge("test_in_flight", "in-flight requests")
	g.With().Set(2)
	h := r.Histogram("test_latency_seconds", "request latency", nil, "endpoint")
	h.With("search").Observe(0.0007)
	h.With("search").Observe(0.3)
	h.With("search").Observe(42) // beyond the last bound: +Inf only
	r.GaugeFunc("test_version", "live version", func() float64 { return 7 })
	r.CounterFunc("test_fsyncs_total", "fsyncs", func() float64 { return 11 })
	// Label values with every escapable byte class.
	c.With(`quo"te\slash` + "\nnewline").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := Lint(buf.Bytes())
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"test_requests_total", "test_in_flight", "test_latency_seconds",
		"test_version", "test_fsyncs_total",
	} {
		if !series[want] {
			t.Errorf("series %q missing from exposition", want)
		}
	}
	out := buf.String()
	if !strings.Contains(out, `endpoint="quo\"te\\slash\nnewline"`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `test_latency_seconds_bucket{endpoint="search",le="+Inf"} 3`) {
		t.Errorf("+Inf bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, "test_latency_seconds_count{endpoint=\"search\"} 3") {
		t.Errorf("histogram count wrong:\n%s", out)
	}
}

// TestHistogramBuckets pins the bucket assignment rule: an observation
// lands in the first bucket whose bound is >= the value, and exposition
// accumulates.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", []float64{0.1, 1, 10})
	m := h.With()
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		m.Observe(v)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	for _, want := range []string{
		`h_seconds_bucket{le="0.1"} 2`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="10"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in:\n%s", want, buf.String())
		}
	}
	if got, want := m.Value(), 0.05+0.1+0.5+5+50; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if m.Count() != 5 {
		t.Errorf("count = %d, want 5", m.Count())
	}
}

// TestGetOrCreate pins the registration contract: identical
// re-registration returns the same family, conflicting schemas panic,
// and the nil registry is a silent sink.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "c", "x")
	b := r.Counter("c_total", "c", "x")
	a.With("1").Add(2)
	if got := b.With("1").Value(); got != 2 {
		t.Errorf("re-registration did not alias: %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("conflicting re-registration did not panic")
			}
		}()
		r.Gauge("c_total", "now a gauge")
	}()

	var nilReg *Registry
	nilReg.Counter("x_total", "x").With().Inc() // must not panic
	nilReg.GaugeFunc("y", "y", func() float64 { return 0 })
	if err := nilReg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
	var nilMetric *Metric
	nilMetric.Inc()
	nilMetric.Observe(1)
	nilMetric.Set(3)
	if nilMetric.Value() != 0 || nilMetric.Count() != 0 {
		t.Error("nil metric not zero")
	}
}

// TestLintRejects feeds Lint malformed expositions and asserts each is
// caught — the checker must not pass vacuously.
func TestLintRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "foo_total 1\n",
		"TYPE without HELP":   "# TYPE foo_total counter\nfoo_total 1\n",
		"bad value":           "# HELP f f\n# TYPE f counter\nf one\n",
		"bad label pair":      "# HELP f f\n# TYPE f counter\nf{x=unquoted} 1\n",
		"non-monotone buckets": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"inf != count": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, in := range cases {
		if _, err := Lint([]byte(in)); err == nil {
			t.Errorf("%s: lint accepted malformed input:\n%s", name, in)
		}
	}
	// And a well-formed document passes.
	ok := "# HELP f f\n# TYPE f counter\nf{x=\"y\"} 1\n"
	if _, err := Lint([]byte(ok)); err != nil {
		t.Errorf("well-formed input rejected: %v", err)
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines —
// increments, observations, child creation, and scrapes all racing —
// and asserts the final counts are exact. Run with -race in CI.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c", "worker")
	h := r.Histogram("hh_seconds", "h", nil, "worker")
	g := r.Gauge("gg", "g")
	r.GaugeFunc("vv", "v", func() float64 { return 1 })

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.With(id).Inc()
				h.With(id).Observe(float64(i%100) / 1000)
				g.With().Add(1)
				if i%500 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
					}
					if _, err := Lint(buf.Bytes()); err != nil {
						t.Errorf("mid-storm lint: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		id := string(rune('a' + w))
		if got := c.With(id).Value(); got != iters {
			t.Errorf("counter %s = %v, want %d", id, got, iters)
		}
		if got := h.With(id).Count(); got != iters {
			t.Errorf("histogram %s count = %d, want %d", id, got, iters)
		}
	}
	if got := g.With().Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
}
