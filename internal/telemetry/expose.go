package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, each preceded by its
// # HELP and # TYPE lines, children sorted by label values, histograms
// expanded into cumulative _bucket series plus _sum and _count.
// Callback families are evaluated here, so a scrape always sees live
// snapshot values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		if f.fn != nil {
			fmt.Fprintf(bw, "%s %s\n", f.name, formatFloat(f.fn()))
			continue
		}
		for _, m := range f.sortedChildren() {
			switch f.kind {
			case KindHistogram:
				writeHistogram(bw, f, m)
			default:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(f.labels, m.values, "", 0), formatFloat(m.Value()))
			}
		}
	}
	return bw.Flush()
}

// Handler returns the GET /metrics handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// sortedChildren snapshots the family's children ordered by label value
// tuple, so exposition output is deterministic.
func (f *family) sortedChildren() []*Metric {
	f.mu.Lock()
	ms := make([]*Metric, 0, len(f.children))
	for _, m := range f.children {
		ms = append(ms, m)
	}
	f.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		for k := range ms[i].values {
			if ms[i].values[k] != ms[j].values[k] {
				return ms[i].values[k] < ms[j].values[k]
			}
		}
		return false
	})
	return ms
}

// writeHistogram expands one child into cumulative buckets + sum +
// count. Bucket counts are read before sum/count, so a concurrent
// Observe can at worst make the scrape's _count exceed the +Inf
// bucket... it cannot: +Inf is computed from _count itself, keeping the
// invariant le="+Inf" == _count that scrapers check.
func writeHistogram(w io.Writer, f *family, m *Metric) {
	cum := uint64(0)
	for i, bound := range f.buckets {
		cum += m.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelString(f.labels, m.values, "le", bound), cum)
	}
	total := m.count.Load()
	if total < cum {
		// A concurrent Observe bumped a bucket after we read an earlier
		// total; clamp so cumulative counts stay monotone.
		total = cum
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
		labelString(f.labels, m.values, "le", math.Inf(1)), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, m.values, "", 0), formatFloat(m.Value()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, m.values, "", 0), total)
}

// labelString renders {k="v",...}, appending an le bucket label when
// leName is non-empty. Returns "" for the empty label set.
func labelString(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		if math.IsInf(le, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(le))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// metricNameRe matches a legal Prometheus metric name.
var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// seriesRe splits one sample line into name, optional label block, and
// value. The label block is validated separately.
var seriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// labelPairRe matches one k="v" pair with exposition escaping.
var labelPairRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)

// Lint parses Prometheus text exposition output and validates it:
// every sample is preceded by # HELP and # TYPE lines for its family,
// names and label pairs are well-formed, values parse as floats, and
// histogram bucket counts are cumulative-monotone with le="+Inf" equal
// to _count. It returns the set of series names seen — histogram
// samples count under their family name — so callers can assert
// required series are present. It is the shared checker behind the
// /metrics unit tests and the replication e2e scrape.
func Lint(data []byte) (map[string]bool, error) {
	series := make(map[string]bool)
	typed := make(map[string]string) // family -> TYPE
	helped := make(map[string]bool)  // family -> saw HELP
	type histState struct {
		lastCum   uint64
		lastLabel string
		count     map[string]uint64 // label set (sans le) -> _count
		infCum    map[string]uint64 // label set (sans le) -> +Inf cumulative
	}
	hists := make(map[string]*histState)

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(text, "# HELP "), " ", 2)
			if !metricNameRe.MatchString(parts[0]) {
				return nil, fmt.Errorf("line %d: bad HELP name %q", line, parts[0])
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", line, text)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown TYPE %q", line, parts[1])
			}
			if !helped[parts[0]] {
				return nil, fmt.Errorf("line %d: TYPE for %q without preceding HELP", line, parts[0])
			}
			typed[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // comment
		}
		m := seriesRe.FindStringSubmatch(text)
		if m == nil {
			return nil, fmt.Errorf("line %d: malformed sample %q", line, text)
		}
		name, labelBlock, valueStr := m[1], m[2], m[3]
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", line, valueStr, err)
		}
		// Resolve the family: histogram samples use suffixed names.
		fam := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && typed[base] == "histogram" {
				fam, suffix = base, sfx
				break
			}
		}
		if typed[fam] == "" {
			return nil, fmt.Errorf("line %d: sample %q without TYPE", line, name)
		}
		le := ""
		bare := labelBlock
		if labelBlock != "" {
			pairs, leVal, err := parseLabels(labelBlock)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
			le = leVal
			bare = pairs
		}
		if suffix == "_bucket" {
			if le == "" {
				return nil, fmt.Errorf("line %d: histogram bucket without le label", line)
			}
			h := hists[fam]
			if h == nil {
				h = &histState{count: make(map[string]uint64), infCum: make(map[string]uint64)}
				hists[fam] = h
			}
			if bare != h.lastLabel {
				h.lastLabel, h.lastCum = bare, 0
			}
			if uint64(value) < h.lastCum {
				return nil, fmt.Errorf("line %d: histogram %s%s buckets not cumulative (%v < %d)", line, fam, bare, value, h.lastCum)
			}
			h.lastCum = uint64(value)
			if le == "+Inf" {
				h.infCum[bare] = uint64(value)
			}
		}
		if suffix == "_count" {
			h := hists[fam]
			if h == nil {
				return nil, fmt.Errorf("line %d: %s_count before any bucket", line, fam)
			}
			h.count[bare] = uint64(value)
		}
		series[fam] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for fam, h := range hists {
		for labels, c := range h.count {
			if inf, ok := h.infCum[labels]; !ok {
				return nil, fmt.Errorf("histogram %s%s has no +Inf bucket", fam, labels)
			} else if inf != c {
				return nil, fmt.Errorf("histogram %s%s: le=\"+Inf\" %d != _count %d", fam, labels, inf, c)
			}
		}
	}
	for fam := range series {
		if !helped[fam] {
			return nil, fmt.Errorf("family %s has samples but no HELP", fam)
		}
	}
	return series, nil
}

// parseLabels validates one {k="v",...} block, returning the block with
// any le pair removed (for histogram per-series grouping) and the le
// value.
func parseLabels(block string) (bare string, le string, err error) {
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return "", "", nil
	}
	var kept []string
	for _, pair := range splitLabelPairs(inner) {
		m := labelPairRe.FindStringSubmatch(pair)
		if m == nil {
			return "", "", fmt.Errorf("malformed label pair %q", pair)
		}
		if m[1] == "le" {
			le = m[2]
			continue
		}
		kept = append(kept, pair)
	}
	if kept == nil {
		return "", le, nil
	}
	return "{" + strings.Join(kept, ",") + "}", le, nil
}

// splitLabelPairs splits on commas outside quoted values (label values
// may contain commas).
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++ // skip escaped char
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
