package store

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relsim/internal/graph"
	"relsim/internal/sparse"
)

// seedShardGraph builds a deterministic small graph shared by the
// sharded parity tests.
func seedShardGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i), "t")
	}
	labels := []string{"writes", "cites"}
	for i := 0; i < m; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), labels[rng.Intn(2)], graph.NodeID(rng.Intn(n)))
	}
	return g
}

// mutateSeq applies a deterministic sequence of commits through any
// store implementation (monolithic or sharded coordinator).
func mutateSeq(t *testing.T, st API, seed int64, commits int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"writes", "cites", "knows"}
	for c := 0; c < commits; c++ {
		err := st.Update(func(tx *Tx) error {
			v, _ := st.View()
			n := v.NumNodes()
			for op := 0; op < 1+rng.Intn(4); op++ {
				switch rng.Intn(5) {
				case 0:
					id := tx.AddNode(fmt.Sprintf("g%d-%d", c, op), "t")
					if err := tx.AddEdge(graph.NodeID(rng.Intn(n)), "knows", id); err != nil {
						return err
					}
				case 1, 2, 3:
					if err := tx.AddEdge(graph.NodeID(rng.Intn(n)), labels[rng.Intn(3)], graph.NodeID(rng.Intn(n))); err != nil {
						return err
					}
				case 4:
					// Removing a possibly-absent edge is a no-op.
					_ = tx.RemoveEdge(graph.NodeID(rng.Intn(n)), labels[rng.Intn(3)], graph.NodeID(rng.Intn(n)))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("commit %d: %v", c, err)
		}
	}
}

// viewBytes serializes a store's current composite view; byte equality
// here means checkpoint/export identity across shard counts.
func viewBytes(t *testing.T, st API) []byte {
	t.Helper()
	var buf bytes.Buffer
	switch s := st.(type) {
	case *Store:
		snap, _ := s.Snapshot()
		if err := graph.WriteView(&buf, snap); err != nil {
			t.Fatal(err)
		}
	case *ShardedStore:
		view, _ := s.Sharded()
		if err := graph.WriteView(&buf, view); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown store type %T", st)
	}
	return buf.Bytes()
}

func TestShardedK1Equivalence(t *testing.T) {
	g := seedShardGraph(30, 120, 1)
	mono := New(g.Clone())
	sh, err := NewSharded(g.Clone(), 1, sparse.PartitionHash)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	mutateSeq(t, mono, 99, 25)
	mutateSeq(t, sh, 99, 25)

	if mono.Version() != sh.Version() {
		t.Fatalf("version %d != %d", sh.Version(), mono.Version())
	}
	if !bytes.Equal(viewBytes(t, mono), viewBytes(t, sh)) {
		t.Fatal("K=1 sharded store diverges from monolithic")
	}
	if !sh.Partition().Trivial() {
		t.Fatal("K=1 partition should be trivial")
	}
}

func TestShardedCommitParity(t *testing.T) {
	for _, fn := range []string{sparse.PartitionHash, sparse.PartitionRange} {
		for _, k := range []int{2, 4, 7} {
			t.Run(fmt.Sprintf("%s-%d", fn, k), func(t *testing.T) {
				g := seedShardGraph(40, 200, 2)
				mono := New(g.Clone())
				sh, err := NewSharded(g.Clone(), k, fn)
				if err != nil {
					t.Fatal(err)
				}
				defer sh.Close()

				mutateSeq(t, mono, 7, 30)
				mutateSeq(t, sh, 7, 30)

				if mono.Version() != sh.Version() {
					t.Fatalf("version %d != %d", sh.Version(), mono.Version())
				}
				if !bytes.Equal(viewBytes(t, mono), viewBytes(t, sh)) {
					t.Fatal("sharded store state diverges from monolithic")
				}

				// Per-shard occupancy must tile the edge set exactly.
				stats := sh.ShardStats()
				if len(stats) != k {
					t.Fatalf("ShardStats: %d entries, want %d", len(stats), k)
				}
				total := 0
				for _, s := range stats {
					total += s.Edges
				}
				view, _ := sh.View()
				if total != view.NumEdges() {
					t.Fatalf("shard edges sum to %d, want %d", total, view.NumEdges())
				}
			})
		}
	}
}

func TestShardedNodeGrowthOntoLastRangeShard(t *testing.T) {
	// Nodes created after the store: range ownership clamps them onto
	// the last shard, and a commit that both creates such a node and
	// wires edges through it must stay byte-identical to monolithic.
	g := seedShardGraph(12, 40, 3)
	mono := New(g.Clone())
	sh, err := NewSharded(g.Clone(), 3, sparse.PartitionRange)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	part := sh.Partition()

	var grown graph.NodeID
	commit := func(st API) error {
		return st.Update(func(tx *Tx) error {
			id := tx.AddNode("grown-node", "t")
			grown = id
			if err := tx.AddEdge(id, "cites", 0); err != nil {
				return err
			}
			return tx.AddEdge(3, "cites", id)
		})
	}
	if err := commit(mono); err != nil {
		t.Fatal(err)
	}
	if err := commit(sh); err != nil {
		t.Fatal(err)
	}

	if owner := part.Owner(int(grown)); owner != 2 {
		t.Fatalf("grown node %d owned by shard %d, want last shard 2", grown, owner)
	}
	if !bytes.Equal(viewBytes(t, mono), viewBytes(t, sh)) {
		t.Fatal("growth commit diverges from monolithic")
	}
	// The grown node's out-edge lives on the last shard only.
	if got := sh.ShardStore(2).Log(0); len(got) == 0 {
		t.Fatal("last shard recorded no updates")
	}
	view, _ := sh.View()
	if got := view.Out(grown, "cites"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Out(grown) = %v, want [0]", got)
	}
	if got := view.In(grown, "cites"); len(got) != 1 || got[0] != 3 {
		t.Fatalf("In(grown) = %v, want [3]", got)
	}
}

func TestShardedUpdateAtomicity(t *testing.T) {
	sh, err := NewSharded(seedShardGraph(10, 30, 4), 4, sparse.PartitionHash)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	before := sh.Version()
	wantErr := fmt.Errorf("abort")
	err = sh.Update(func(tx *Tx) error {
		tx.AddNode("doomed", "t")
		return wantErr
	})
	if err == nil || !strings.Contains(err.Error(), "abort") {
		t.Fatalf("Update error = %v, want abort", err)
	}
	if sh.Version() != before {
		t.Fatalf("aborted commit advanced version %d -> %d", before, sh.Version())
	}
	for i := 0; i < sh.NumShards(); i++ {
		if v := sh.ShardStore(i).Version(); v != before {
			t.Fatalf("shard %d at version %d after abort, want %d", i, v, before)
		}
	}
	view, _ := sh.View()
	if _, ok := view.NodeByName("doomed"); ok {
		t.Fatal("aborted node visible in composite view")
	}
}

func TestOpenShardedReopen(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(dir, 4, sparse.PartitionHash)
	if err != nil {
		t.Fatal(err)
	}
	mutateSeqDurable(t, sh, 5, 10)
	wantVersion := sh.Version()
	wantBytes := viewBytes(t, sh)
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	sh2, err := OpenSharded(dir, 4, sparse.PartitionHash)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer sh2.Close()
	if sh2.Version() != wantVersion {
		t.Fatalf("reopened version %d, want %d", sh2.Version(), wantVersion)
	}
	if !bytes.Equal(viewBytes(t, sh2), wantBytes) {
		t.Fatal("reopened state diverges")
	}

	// Reopening with a different shard layout must refuse, not reshuffle.
	if _, err := OpenSharded(dir, 8, sparse.PartitionHash); err == nil {
		t.Fatal("reopen with different K: want error, got nil")
	} else if !strings.Contains(err.Error(), "reshuffle") {
		t.Fatalf("mismatch error should explain the reshuffle hazard, got: %v", err)
	}
	if _, err := OpenSharded(dir, 4, sparse.PartitionRange); err == nil {
		t.Fatal("reopen with different fn: want error, got nil")
	}
}

// mutateSeqDurable is mutateSeq but keeps every commit to a single
// logical update so WAL batches align one-to-one with versions (what
// the heal test truncates against).
func mutateSeqDurable(t *testing.T, st API, seed int64, commits int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < commits; c++ {
		err := st.Update(func(tx *Tx) error {
			if c == 0 {
				tx.AddNode("seed-a", "t")
				return nil
			}
			v, _ := st.View()
			n := v.NumNodes()
			if rng.Intn(3) == 0 {
				tx.AddNode(fmt.Sprintf("d%d", c), "t")
				return nil
			}
			return tx.AddEdge(graph.NodeID(rng.Intn(n)), "cites", graph.NodeID(rng.Intn(n)))
		})
		if err != nil {
			t.Fatalf("commit %d: %v", c, err)
		}
	}
}

func TestOpenShardedHealForward(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(dir, 2, sparse.PartitionHash)
	if err != nil {
		t.Fatal(err)
	}
	mutateSeqDurable(t, sh, 11, 12)
	wantVersion := sh.Version()
	wantBytes := viewBytes(t, sh)
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash asymmetry: tear the tail of shard 1's WAL so it recovers a
	// few versions behind shard 0.
	segs := walFiles(t, filepath.Join(dir, "shard-0001"))
	if len(segs) == 0 {
		t.Fatal("no WAL segments for shard 1")
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	sh2, err := OpenSharded(dir, 2, sparse.PartitionHash)
	if err != nil {
		t.Fatalf("heal-forward reopen: %v", err)
	}
	defer sh2.Close()
	if sh2.Version() != wantVersion {
		t.Fatalf("healed version %d, want %d", sh2.Version(), wantVersion)
	}
	for i := 0; i < 2; i++ {
		if v := sh2.ShardStore(i).Version(); v != wantVersion {
			t.Fatalf("shard %d healed to %d, want %d", i, v, wantVersion)
		}
	}
	if !bytes.Equal(viewBytes(t, sh2), wantBytes) {
		t.Fatal("healed state diverges from pre-crash state")
	}
}

func TestShardedCheckpointReader(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(dir, 3, sparse.PartitionRange)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	mutateSeqDurable(t, sh, 13, 8)

	rc, version, size, err := sh.CheckpointReader()
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if version != sh.Version() {
		t.Fatalf("checkpoint version %d, want %d", version, sh.Version())
	}
	if int64(len(got)) != size {
		t.Fatalf("checkpoint size %d, want %d", len(got), size)
	}
	// The streamed checkpoint is the composite view, byte-identical to
	// what a monolithic store at the same state would serialize.
	if want := viewBytes(t, sh); !bytes.Equal(got, want) {
		t.Fatal("sharded checkpoint bytes diverge from composite view serialization")
	}
}

func TestShardedLogStream(t *testing.T) {
	sh, err := NewSharded(seedShardGraph(10, 20, 6), 4, sparse.PartitionHash)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	mutateSeq(t, sh, 17, 10)

	// The coordinator serves the FULL logical stream (from shard 0,
	// which records every update regardless of edge ownership).
	updates := sh.Log(0)
	if uint64(len(updates)) == 0 {
		t.Fatal("empty log stream")
	}
	if last := updates[len(updates)-1].Version; last != sh.Version() {
		t.Fatalf("log tail at version %d, want %d", last, sh.Version())
	}
	for i := 1; i < len(updates); i++ {
		if updates[i].Version != updates[i-1].Version+1 {
			t.Fatalf("log gap between %d and %d", updates[i-1].Version, updates[i].Version)
		}
	}
	feed := sh.LogFeed(0, 0)
	if feed.Gap {
		t.Fatal("unexpected feed gap")
	}
	if len(feed.Updates) != len(updates) {
		t.Fatalf("feed served %d updates, Log served %d", len(feed.Updates), len(updates))
	}
}

func TestShardedPinStability(t *testing.T) {
	sh, err := NewSharded(seedShardGraph(15, 50, 8), 2, sparse.PartitionHash)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	pin := sh.Pin()
	defer pin.Release()
	v0 := pin.Version()
	view := pin.View()
	edges0 := view.NumEdges()

	mutateSeq(t, sh, 21, 5)

	if pin.Version() != v0 {
		t.Fatalf("pinned version moved %d -> %d", v0, pin.Version())
	}
	if view.NumEdges() != edges0 {
		t.Fatal("pinned view observed later commits")
	}
	if sh.OldestPinned() != v0 {
		t.Fatalf("OldestPinned = %d, want %d", sh.OldestPinned(), v0)
	}
}
