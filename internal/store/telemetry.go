package store

import (
	"time"

	"relsim/internal/telemetry"
)

// storeObs holds the event-driven metrics the store feeds at commit and
// checkpoint time. Snapshot-style values (version, pins, WAL occupancy)
// are registered as scrape-time callbacks instead and never touch the
// hot path.
type storeObs struct {
	commitSeconds     *telemetry.Metric
	commits           *telemetry.Metric
	checkpointSeconds *telemetry.Metric
}

// commitBuckets resolve the latencies that matter on the commit path:
// sub-millisecond in-memory publishes up through slow-disk fsyncs.
var commitBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Instrument registers the store's metrics with reg and starts feeding
// them: commit latency and count, checkpoint duration, and — on a
// durable store — WAL fsync latency, appended bytes, and
// segment/checkpoint occupancy gauges. Gauges are scrape-time callbacks
// over the store's existing stats, so /stats and /metrics can never
// disagree. Call once, before serving; a nil registry is a no-op.
func (s *Store) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	obs := &storeObs{
		commitSeconds: reg.Histogram("relsim_store_commit_seconds",
			"Latency of committed write transactions (WAL append + publish).",
			commitBuckets).With(),
		commits: reg.Counter("relsim_store_commits_total",
			"Committed write transactions.").With(),
		checkpointSeconds: reg.Histogram("relsim_store_checkpoint_seconds",
			"Duration of completed graph checkpoints.", nil).With(),
	}
	s.obs.Store(obs)

	reg.GaugeFunc("relsim_store_version",
		"Current published graph version.",
		func() float64 { return float64(s.Version()) })
	reg.GaugeFunc("relsim_store_pinned_readers",
		"Readers currently pinning a snapshot.",
		func() float64 { return float64(s.PinStats().Readers) })
	reg.GaugeFunc("relsim_store_pin_spread_versions",
		"Live version minus the oldest pinned version.",
		func() float64 { return float64(s.PinStats().Spread) })
	reg.GaugeFunc("relsim_store_log_records",
		"Records retained in the in-memory replication log.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.log))
		})

	d := s.dur
	if d == nil {
		return
	}
	reg.CounterFunc("relsim_store_checkpoints_total",
		"Checkpoints written this process.",
		func() float64 { return float64(d.checkpoints.Load()) })
	reg.CounterFunc("relsim_store_checkpoint_errors_total",
		"Checkpoint attempts that failed.",
		func() float64 { return float64(d.checkpointErrs.Load()) })
	reg.GaugeFunc("relsim_store_last_checkpoint_version",
		"Version of the newest checkpoint on disk.",
		func() float64 { return float64(d.lastCheckpoint.Load()) })

	fsync := reg.Histogram("relsim_wal_fsync_seconds",
		"Latency of WAL fsyncs.", commitBuckets).With()
	appended := reg.Counter("relsim_wal_appended_bytes_total",
		"Bytes appended to the WAL (headers included).").With()
	d.wal.SetObservers(
		func(seconds float64) { fsync.Observe(seconds) },
		func(bytes int) { appended.Add(float64(bytes)) },
	)
	reg.CounterFunc("relsim_wal_records_total",
		"Records appended to the WAL this process.",
		func() float64 { return float64(d.wal.Stats().Appended) })
	reg.CounterFunc("relsim_wal_fsyncs_total",
		"WAL fsyncs this process.",
		func() float64 { return float64(d.wal.Stats().Fsyncs) })
	reg.GaugeFunc("relsim_wal_segments",
		"Live WAL segment files.",
		func() float64 { return float64(d.wal.Stats().Segments) })
	reg.GaugeFunc("relsim_wal_active_segment_bytes",
		"Bytes in the active WAL segment.",
		func() float64 { return float64(d.wal.Stats().ActiveSegmentBytes) })
}

// observeCommit records one committed transaction. No-op until
// Instrument runs.
func (s *Store) observeCommit(start time.Time) {
	if obs := s.obs.Load(); obs != nil {
		obs.commits.Inc()
		obs.commitSeconds.Observe(time.Since(start).Seconds())
	}
}

// observeCheckpoint records one completed checkpoint's duration.
func (s *Store) observeCheckpoint(start time.Time) {
	if obs := s.obs.Load(); obs != nil {
		obs.checkpointSeconds.Observe(time.Since(start).Seconds())
	}
}
