package store

// Durability. A store built with Open(dir) survives its process:
// every committed mutation batch is appended to a write-ahead log
// (internal/wal) before the new version is published, and the graph is
// periodically checkpointed so recovery replays checkpoint + tail
// instead of the full history. Open recovers on boot — loading the
// newest readable checkpoint, replaying the WAL records past it, and
// resuming the version counter exactly where the crash left it, so
// (version, pattern) cache keys stay globally meaningful across
// restarts. A torn or corrupted tail record is truncated by the WAL
// scan; because the append happens before publication, anything lost
// that way was never observable, and every batch survives or vanishes
// whole (all-or-nothing per Tx).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"relsim/internal/graph"
	"relsim/internal/wal"
)

const (
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".ckpt"

	// DefaultCheckpointEvery is the default number of versions between
	// graph checkpoints.
	DefaultCheckpointEvery = 1024
)

// ErrDurability marks a commit that failed in the durability layer (WAL
// append or fsync) rather than in the transaction callback: the batch
// rolled back, but the fault is the server's storage, not the caller's
// request. Test with errors.Is.
var ErrDurability = errors.New("durability failure")

// durable is the store's durability state.
type durable struct {
	dir             string
	wal             *wal.Log
	syncPolicy      wal.SyncPolicy
	checkpointEvery uint64

	lastCheckpoint atomic.Uint64 // version of the newest checkpoint
	checkpoints    atomic.Uint64 // checkpoints written this process
	checkpointErrs atomic.Uint64

	// ckptMu serializes checkpoint writers (the background cadence
	// goroutine and manual Checkpoint calls); inFlight dedupes cadence
	// triggers so at most one background checkpoint runs at a time;
	// ckptWG lets Close drain a spawned checkpoint goroutine even before
	// it reaches ckptMu.
	ckptMu   sync.Mutex
	inFlight atomic.Bool
	ckptWG   sync.WaitGroup

	recovery RecoveryStats
}

// RecoveryStats describes what Open had to do to reconstruct the
// store.
type RecoveryStats struct {
	// CheckpointVersion is the version of the checkpoint recovery
	// started from (0 when the directory was fresh).
	CheckpointVersion uint64 `json:"checkpoint_version"`
	// ReplayedRecords is the number of WAL records (mutation batches)
	// replayed past the checkpoint.
	ReplayedRecords uint64 `json:"replayed_records"`
	// ReplayedVersions is the number of individual mutations those
	// batches carried.
	ReplayedVersions uint64 `json:"replayed_versions"`
	// RecoveredVersion is the version the store resumed at.
	RecoveredVersion uint64 `json:"recovered_version"`
	// CorruptCheckpointsSkipped counts newer checkpoint files that
	// failed to parse and were passed over for an older one.
	CorruptCheckpointsSkipped int `json:"corrupt_checkpoints_skipped,omitempty"`
}

// DurabilityStats is the monitoring view of the durability layer.
type DurabilityStats struct {
	Enabled               bool          `json:"enabled"`
	Dir                   string        `json:"dir,omitempty"`
	SyncPolicy            string        `json:"sync_policy,omitempty"`
	WAL                   wal.Stats     `json:"wal"`
	CheckpointEvery       uint64        `json:"checkpoint_every"`
	LastCheckpointVersion uint64        `json:"last_checkpoint_version"`
	Checkpoints           uint64        `json:"checkpoints_written"`
	CheckpointErrors      uint64        `json:"checkpoint_errors"`
	Recovery              RecoveryStats `json:"recovery"`
}

// DurabilityStats reports the durability layer's counters; for an
// in-memory store only Enabled=false is meaningful.
func (s *Store) DurabilityStats() DurabilityStats {
	d := s.dur
	if d == nil {
		return DurabilityStats{}
	}
	return DurabilityStats{
		Enabled:               true,
		Dir:                   d.dir,
		SyncPolicy:            d.syncPolicy.String(),
		WAL:                   d.wal.Stats(),
		CheckpointEvery:       d.checkpointEvery,
		LastCheckpointVersion: d.lastCheckpoint.Load(),
		Checkpoints:           d.checkpoints.Load(),
		CheckpointErrors:      d.checkpointErrs.Load(),
		Recovery:              d.recovery,
	}
}

// Durable reports whether the store persists its updates.
func (s *Store) Durable() bool { return s.dur != nil }

// openConfig collects Open options.
type openConfig struct {
	seed            *graph.Graph
	walOpt          wal.Options
	checkpointEvery uint64
	logCap          int
	// replayFilter, when set, is consulted per replayed update: false
	// skips materializing the mutation into the graph while still
	// advancing the version counter. This is how a shard replays the
	// full logical WAL stream but keeps only the edges it owns.
	replayFilter func(Update) bool
}

// withReplayFilter installs a replay materialization filter; package
// internal, used by OpenSharded.
func withReplayFilter(fn func(Update) bool) OpenOption {
	return func(c *openConfig) { c.replayFilter = fn }
}

// OpenOption configures Open.
type OpenOption func(*openConfig)

// WithSeed supplies the initial graph for a fresh data directory. A
// directory that already holds a checkpoint or WAL records ignores the
// seed: recovered state always wins, so restarting with a different
// dataset flag cannot silently shadow committed mutations. The seed is
// never mutated.
func WithSeed(g *graph.Graph) OpenOption {
	return func(c *openConfig) { c.seed = g }
}

// WithSync sets the WAL fsync policy (default wal.SyncAlways: a
// committed batch survives any crash).
func WithSync(p wal.SyncPolicy) OpenOption {
	return func(c *openConfig) { c.walOpt.Sync = p }
}

// WithSyncInterval sets the cadence for wal.SyncEvery.
func WithSyncInterval(d time.Duration) OpenOption {
	return func(c *openConfig) { c.walOpt.SyncInterval = d }
}

// WithSegmentBytes sets the WAL segment rotation bound.
func WithSegmentBytes(n int64) OpenOption {
	return func(c *openConfig) { c.walOpt.SegmentBytes = n }
}

// WithCheckpointEvery checkpoints the graph every n committed versions
// (default DefaultCheckpointEvery). 0 disables periodic checkpoints;
// recovery then replays the whole WAL since the boot checkpoint.
func WithCheckpointEvery(n uint64) OpenOption {
	return func(c *openConfig) { c.checkpointEvery = n }
}

// WithLogRetention bounds the in-memory replication feed (see
// SetLogRetention).
func WithLogRetention(n int) OpenOption {
	return func(c *openConfig) {
		if n > 0 {
			c.logCap = n
		}
	}
}

// Open opens (creating if needed) a durable store in dir and recovers
// its state: the newest readable checkpoint is loaded, the WAL tail
// past it is replayed batch-by-batch (each batch all-or-nothing, with
// version continuity verified), and the version counter resumes at the
// last committed mutation. A torn tail record — a crash mid-append —
// is truncated, never an error. On a fresh directory the seed graph
// (WithSeed, or empty) becomes version 0 and an initial checkpoint is
// written so the directory is self-contained from then on.
func Open(dir string, opts ...OpenOption) (*Store, error) {
	cfg := openConfig{
		walOpt:          wal.Options{Sync: wal.SyncAlways},
		checkpointEvery: DefaultCheckpointEvery,
		logCap:          DefaultLogCap,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	base, ckptVersion, hadCkpt, corruptSkipped, err := loadCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	if base == nil {
		if base = cfg.seed; base == nil {
			base = graph.New()
		}
	}
	w, err := wal.Open(dir, cfg.walOpt)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}

	// Replay the tail: one copy-on-write builder per batch, so a batch
	// that fails integrity checks leaves the prefix intact.
	snap := base.Snapshot()
	version := ckptVersion
	var records, mutations uint64
	var ring []Update
	ringDropped := ckptVersion
	replayErr := w.Replay(ckptVersion, func(seq uint64, payload []byte) error {
		var ups []Update
		if err := json.Unmarshal(payload, &ups); err != nil {
			return fmt.Errorf("store: wal record %d: %w", seq, err)
		}
		if len(ups) == 0 {
			return fmt.Errorf("store: wal record %d: empty batch", seq)
		}
		b := graph.NewBuilder(snap)
		for _, u := range ups {
			if u.Version != version+1 {
				return fmt.Errorf("store: wal record %d: version %d after %d (gap)", seq, u.Version, version)
			}
			if cfg.replayFilter == nil || cfg.replayFilter(u) {
				if err := applyUpdate(b, u); err != nil {
					return fmt.Errorf("store: wal record %d: %w", seq, err)
				}
			}
			version++
		}
		if seq != version {
			return fmt.Errorf("store: wal record %d commits at version %d (mismatch)", seq, version)
		}
		snap = b.Build()
		records++
		mutations += uint64(len(ups))
		ring = append(ring, ups...)
		if over := len(ring) - cfg.logCap; over > 0 {
			ringDropped = ring[over-1].Version
			ring = append(ring[:0:0], ring[over:]...)
		}
		return nil
	})
	if replayErr != nil {
		w.Close()
		return nil, replayErr
	}

	s := &Store{logCap: cfg.logCap, pins: make(map[uint64]int)}
	s.current.Store(&versioned{snap: snap, version: version})
	s.log = ring
	s.logDropped = ringDropped
	d := &durable{
		dir:             dir,
		wal:             w,
		syncPolicy:      cfg.walOpt.Sync,
		checkpointEvery: cfg.checkpointEvery,
		recovery: RecoveryStats{
			CheckpointVersion:         ckptVersion,
			ReplayedRecords:           records,
			ReplayedVersions:          mutations,
			RecoveredVersion:          version,
			CorruptCheckpointsSkipped: corruptSkipped,
		},
	}
	d.lastCheckpoint.Store(ckptVersion)
	s.dur = d
	if !hadCkpt {
		// Fresh directory: persist the seed so the directory alone can
		// reconstruct version 0 on the next boot.
		if err := s.checkpointNow(s.current.Load()); err != nil {
			w.Close()
			return nil, err
		}
	}
	return s, nil
}

// Close drains in-flight commits, marks the store closed — every later
// Update fails fast with ErrClosed instead of racing the teardown — and
// flushes and closes the durability layer. Idempotent. Taking writeMu
// first means a mutation that already entered its commit path finishes
// (and reaches the WAL) before the WAL is closed; a mutation arriving
// after gets the clean ErrClosed, never a torn append or a panic.
func (s *Store) Close() error {
	s.writeMu.Lock()
	already := s.closed.Swap(true)
	s.writeMu.Unlock()
	if already || s.dur == nil {
		return nil
	}
	// Drain in-flight checkpoints so their file writes don't race the
	// caller tearing the directory down: ckptWG covers background ones
	// (even one spawned but not yet running), and cycling ckptMu waits
	// out a synchronous Checkpoint()/CheckpointReader() caller that
	// passed its closed check before we set the flag. No new checkpoint
	// can start: checkpointNow re-checks closed under ckptMu.
	s.dur.ckptWG.Wait()
	s.dur.ckptMu.Lock()
	s.dur.ckptMu.Unlock() //nolint:staticcheck // empty critical section = barrier
	return s.dur.wal.Close()
}

// Checkpoint forces a graph checkpoint of the current version and trims
// WAL history it makes redundant. Synchronous: it returns once the
// checkpoint is durable. Refused with ErrClosed after Close — Close
// promises no further writes to the directory, and a late checkpoint
// would create files and trim segments under an operator tearing the
// directory down.
func (s *Store) Checkpoint() error {
	if s.dur == nil {
		return fmt.Errorf("store: not durable")
	}
	if s.closed.Load() {
		return fmt.Errorf("store: %w", ErrClosed)
	}
	return s.checkpointNow(s.current.Load())
}

// CheckpointVersion returns the version a checkpoint transfer would
// carry right now — the newest on-disk checkpoint's version for a
// durable store, the live version for an in-memory one — without
// materializing the stream. The cheap probe behind the conditional
// GET /checkpoint?if_newer_than= answer.
func (s *Store) CheckpointVersion() uint64 {
	if d := s.dur; d != nil {
		return d.lastCheckpoint.Load()
	}
	return s.current.Load().version
}

// walFeed assembles one replication-feed page from the write-ahead log:
// the path for a follower whose resume point has aged out of the
// bounded in-memory log. It reports whether the page is contiguous from
// since; false means the WAL cannot bridge the range (checkpoint
// trimming retired the needed segments, or the store is not durable)
// and the caller must fall back to the hard-gap signal. live is the
// published version captured before the scan: a WAL record past it may
// belong to a commit that is still in flight — or one whose fsync
// failed and is about to be rewound — so nothing beyond live is ever
// served (a version a follower applies must be one the leader
// published). Scan faults degrade to false, never to an error; the only
// error surfaced is the context's.
func (s *Store) walFeed(ctx context.Context, since uint64, max int, live uint64) (Feed, bool) {
	d := s.dur
	if d == nil || since >= live {
		return Feed{Since: since, Version: live}, false
	}
	f := Feed{Since: since, Version: live}
	next := since + 1
	err := d.wal.ReadFrom(since, func(seq uint64, payload []byte) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		var ups []Update
		if json.Unmarshal(payload, &ups) != nil {
			return false, nil // unreadable batch: the contiguous prefix ends here
		}
		for _, u := range ups {
			if u.Version < next {
				continue // the batch started before the cut
			}
			if u.Version > next || u.Version > live {
				// A hole (a segment trimmed mid-scan) or a record appended
				// ahead of publication: the page ends here.
				return false, nil
			}
			if max > 0 && len(f.Updates) >= max {
				f.More = true
				return false, nil
			}
			f.Updates = append(f.Updates, u)
			next++
		}
		return next <= live, nil
	})
	if err != nil {
		return f, false // context canceled; LogFeedContext surfaces it
	}
	if len(f.Updates) == 0 || f.Updates[0].Version != since+1 {
		return f, false
	}
	return f, true
}

// CheckpointReader returns a stream of the newest checkpoint — the
// bootstrap-transfer primitive behind GET /checkpoint. The stream is
// the line-oriented graph serialization (graph.Read parses it) of the
// returned version; a follower Resets onto it and tails the feed from
// there. For a durable store the bytes come straight off the newest
// on-disk checkpoint file (its version is exactly the WAL trim floor,
// so checkpoint + feed is always contiguous); size is the exact byte
// count, or -1 when unknown. For an in-memory store the current
// snapshot is serialized on the spot. The caller must Close the reader.
func (s *Store) CheckpointReader() (rc io.ReadCloser, version uint64, size int64, err error) {
	d := s.dur
	if d == nil {
		cur := s.current.Load()
		var buf bytes.Buffer
		if err := graph.WriteView(&buf, cur.snap); err != nil {
			return nil, 0, 0, fmt.Errorf("store: checkpoint stream: %w", err)
		}
		return io.NopCloser(bytes.NewReader(buf.Bytes())), cur.version, int64(buf.Len()), nil
	}
	for attempt := 0; ; attempt++ {
		// Under ckptMu no concurrent checkpointer can retire the file
		// between the listing and the open; once the fd is held the file
		// may be unlinked freely (the stream keeps reading it).
		d.ckptMu.Lock()
		cs := listCheckpoints(d.dir)
		if len(cs) > 0 {
			f, oerr := os.Open(cs[0].path)
			if oerr == nil {
				size := int64(-1)
				if info, serr := f.Stat(); serr == nil {
					size = info.Size()
				}
				d.ckptMu.Unlock()
				return f, cs[0].version, size, nil
			}
			d.ckptMu.Unlock()
			if attempt > 0 {
				return nil, 0, 0, fmt.Errorf("store: checkpoint stream: %w", oerr)
			}
		} else {
			d.ckptMu.Unlock()
			if attempt > 0 {
				return nil, 0, 0, fmt.Errorf("store: no readable checkpoint")
			}
		}
		// No readable checkpoint (a fresh-directory write failed earlier,
		// or the file vanished under us): write one now and retry once.
		if cerr := s.Checkpoint(); cerr != nil {
			return nil, 0, 0, cerr
		}
	}
}

// appendBatch writes one committed batch to the WAL, durable per the
// sync policy, before the caller publishes it.
func (d *durable) appendBatch(version uint64, ups []Update) error {
	payload, err := json.Marshal(ups)
	if err != nil {
		return err
	}
	return d.wal.Append(version, payload)
}

// maybeCheckpointLocked launches a background checkpoint when the
// cadence says so. writeMu held (commit path) — but the checkpoint
// itself serializes an immutable snapshot, so it runs on its own
// goroutine and adds nothing to commit latency; at most one is in
// flight, and while one runs further cadence triggers are skipped (the
// next commit re-checks). Checkpoint failure never fails a commit — the
// batch is already durable in the WAL — it only bumps the error
// counter; replay just stays longer until a checkpoint succeeds.
func (s *Store) maybeCheckpointLocked(v *versioned) {
	d := s.dur
	if d.checkpointEvery == 0 || v.version-d.lastCheckpoint.Load() < d.checkpointEvery {
		return
	}
	if !d.inFlight.CompareAndSwap(false, true) {
		return
	}
	d.ckptWG.Add(1)
	go func() {
		defer d.ckptWG.Done()
		defer d.inFlight.Store(false)
		if err := s.checkpointNow(v); err != nil {
			d.checkpointErrs.Add(1)
		}
	}()
}

// checkpointNow writes v's graph atomically (temp file + rename),
// retires older checkpoints and trims covered WAL segments. v.snap is
// immutable, so no store lock is needed; ckptMu serializes concurrent
// checkpointers, and a version already covered by a newer checkpoint is
// skipped.
func (s *Store) checkpointNow(v *versioned) error {
	start := time.Now()
	d := s.dur
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	// Re-checked under ckptMu — the lock Close cycles after setting the
	// flag — so a caller that passed an earlier closed check can never
	// create files or trim segments after Close returned.
	if s.closed.Load() {
		return fmt.Errorf("store: %w", ErrClosed)
	}
	if v.version < d.lastCheckpoint.Load() {
		return nil
	}
	final := filepath.Join(d.dir, fmt.Sprintf("%s%016x%s", checkpointPrefix, v.version, checkpointSuffix))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := graph.WriteView(f, v.snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: checkpoint: %w", err)
	}
	wal.SyncDir(d.dir)
	// Retire superseded checkpoints and the WAL history below the new
	// one; failures here cost disk, not correctness.
	for _, c := range listCheckpoints(d.dir) {
		if c.version < v.version {
			os.Remove(c.path)
		}
	}
	d.wal.TrimThrough(v.version)
	d.lastCheckpoint.Store(v.version)
	d.checkpoints.Add(1)
	s.observeCheckpoint(start)
	return nil
}

// applyUpdate replays one logged mutation into a builder.
func applyUpdate(b *graph.Builder, u Update) error {
	switch u.Op {
	case OpAddNode:
		if id := b.AddNode(u.Name, u.Type); id != u.Node {
			return fmt.Errorf("replayed node id %d, log says %d", id, u.Node)
		}
		return nil
	case OpAddEdge:
		return b.AddEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	case OpRemoveEdge:
		if !b.RemoveEdge(u.Edge.From, u.Edge.Label, u.Edge.To) {
			return fmt.Errorf("replayed remove of absent edge (%d,%q,%d)", u.Edge.From, u.Edge.Label, u.Edge.To)
		}
		return nil
	}
	return fmt.Errorf("unknown op %q", u.Op)
}

type checkpointFile struct {
	version uint64
	path    string
}

// listCheckpoints returns dir's checkpoint files sorted newest first.
func listCheckpoints(dir string) []checkpointFile {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var cs []checkpointFile
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, checkpointPrefix) || !strings.HasSuffix(name, checkpointSuffix) {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, checkpointPrefix), checkpointSuffix), 16, 64)
		if err != nil {
			continue
		}
		cs = append(cs, checkpointFile{version: v, path: filepath.Join(dir, name)})
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].version > cs[j].version })
	return cs
}

// loadCheckpoint loads the newest readable checkpoint, skipping
// corrupt ones in favor of older good ones. No checkpoint at all is a
// fresh directory, not an error; checkpoints present but all unreadable
// is an error (silently restarting from scratch would shadow committed
// history).
func loadCheckpoint(dir string) (g *graph.Graph, version uint64, ok bool, corruptSkipped int, err error) {
	cs := listCheckpoints(dir)
	if len(cs) == 0 {
		return nil, 0, false, 0, nil
	}
	for _, c := range cs {
		f, ferr := os.Open(c.path)
		if ferr != nil {
			corruptSkipped++
			continue
		}
		g, gerr := graph.Read(f)
		f.Close()
		if gerr != nil {
			corruptSkipped++
			continue
		}
		return g, c.version, true, corruptSkipped, nil
	}
	return nil, 0, false, corruptSkipped, fmt.Errorf("store: all %d checkpoints in %s are unreadable", len(cs), dir)
}
