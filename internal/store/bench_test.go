package store

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"relsim/internal/graph"
)

// benchStore builds a store over a mid-size single-label graph; the
// writer loop rewrites label "w" so readers of label "e" measure pure
// snapshot-read throughput.
func benchStore() (*Store, []graph.NodeID) {
	g := graph.New()
	const n = 2000
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode("", "t")
	}
	for i := 0; i < n; i++ {
		for k := 1; k <= 4; k++ {
			g.AddEdge(ids[i], "e", ids[(i+k*7)%n])
		}
	}
	return New(g), ids
}

// BenchmarkConcurrentReadWrite compares snapshot-read throughput with
// and without a sustained concurrent writer at 1/4/16 readers. Under
// MVCC the mixed numbers should track the read-only numbers closely
// (writers publish new versions; they never block readers), where the
// previous RWMutex store stalled every reader behind each write — and,
// worse, behind each *queued* writer, since a waiting RWMutex writer
// blocks new readers. The writer is paced (~1k mutations/sec) so the
// benchmark measures blocking rather than raw CPU-share contention on
// small machines.
func BenchmarkConcurrentReadWrite(b *testing.B) {
	for _, mixed := range []bool{false, true} {
		mode := "readonly"
		if mixed {
			mode = "mixed"
		}
		for _, readers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/readers-%d", mode, readers), func(b *testing.B) {
				s, ids := benchStore()
				stop := make(chan struct{})
				var writerDone sync.WaitGroup
				if mixed {
					writerDone.Add(1)
					go func() {
						defer writerDone.Done()
						i := 0
						for {
							select {
							case <-stop:
								return
							default:
							}
							u, v := ids[i%len(ids)], ids[(i+13)%len(ids)]
							s.AddEdge(u, "w", v)
							s.RemoveEdge(u, "w", v)
							i++
							time.Sleep(2 * time.Millisecond)
						}
					}()
				}
				read := func() int {
					snap, _ := s.Snapshot()
					total := 0
					for _, id := range ids[:64] {
						total += len(snap.Out(id, "e"))
					}
					return total
				}
				b.ResetTimer()
				per := b.N/readers + 1
				var wg sync.WaitGroup
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						sink := 0
						for i := 0; i < per; i++ {
							sink += read()
						}
						_ = sink
					}()
				}
				wg.Wait()
				b.StopTimer()
				close(stop)
				writerDone.Wait()
				b.ReportMetric(float64(per*readers)/b.Elapsed().Seconds(), "reads/sec")
			})
		}
	}
}
