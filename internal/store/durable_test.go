package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"relsim/internal/graph"
	"relsim/internal/wal"
)

func seedGraph() *graph.Graph {
	g := graph.New()
	a := g.AddNode("a", "t")
	b := g.AddNode("b", "t")
	g.AddEdge(a, "x", b)
	return g
}

// walFiles returns the store directory's WAL segment paths, sorted.
func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOpenFreshSeedsAndPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSeed(seedGraph()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Version() != 0 {
		t.Fatalf("fresh durable store version = %d", s.Version())
	}
	// The fresh directory is self-contained: a checkpoint exists before
	// any mutation.
	if cs := listCheckpoints(dir); len(cs) != 1 || cs[0].version != 0 {
		t.Fatalf("fresh checkpoints = %+v, want one at version 0", cs)
	}
	c := s.AddNode("c", "t")
	if err := s.AddEdge(0, "y", c); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a DIFFERENT seed: recovered state must win.
	other := graph.New()
	other.AddNode("imposter", "t")
	s2, err := Open(dir, WithSeed(other))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Version() != 2 {
		t.Fatalf("recovered version = %d, want 2", s2.Version())
	}
	snap, _ := s2.Snapshot()
	if snap.NumNodes() != 3 || snap.NumEdges() != 2 {
		t.Fatalf("recovered graph = %v", snap)
	}
	// Node metadata replays too (names and types ride the log records).
	if n, ok := snap.NodeByName("c"); !ok || n.Type != "t" {
		t.Fatalf("replayed node metadata lost: %+v ok=%v", n, ok)
	}
	if _, ok := snap.NodeByName("imposter"); ok {
		t.Fatal("seed overrode recovered state")
	}
	ds := s2.DurabilityStats()
	if !ds.Enabled || ds.Recovery.RecoveredVersion != 2 || ds.Recovery.ReplayedRecords != 2 {
		t.Fatalf("durability stats = %+v", ds)
	}
	// The replication feed is primed from the replayed tail.
	feed := s2.LogFeed(0, 0)
	if len(feed.Updates) != 2 || feed.Gap {
		t.Fatalf("post-recovery feed = %+v", feed)
	}
}

func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSeed(seedGraph()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.AddEdge(0, "y", 1); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close. Tear the WAL tail mid-record.
	segs := walFiles(t, dir)
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	defer s2.Close()
	// The torn batch is gone whole; everything before it survives whole.
	if got := s2.Version(); got != 4 {
		t.Fatalf("recovered version = %d, want 4 (torn batch dropped)", got)
	}
	snap, _ := s2.Snapshot()
	if want := 1 + 4; snap.NumEdges() != want {
		t.Fatalf("recovered edges = %d, want %d", snap.NumEdges(), want)
	}
	if s2.DurabilityStats().WAL.TornTruncated != 1 {
		t.Fatalf("torn counter = %+v", s2.DurabilityStats().WAL)
	}
	// The store keeps working: the version counter resumes, no
	// collision with the truncated record.
	if err := s2.AddEdge(0, "y", 1); err != nil {
		t.Fatal(err)
	}
	if s2.Version() != 5 {
		t.Fatalf("post-recovery version = %d, want 5", s2.Version())
	}
}

// TestCrashRecoveryPropertyRandomCuts is the kill-mid-append property
// test: commit a random mutation history, then "crash" by cutting the
// WAL at arbitrary byte offsets (torn tail) or flipping a tail byte
// (corrupted checksum). Open must always recover a prefix-consistent
// store: the version is exactly a batch boundary, the graph is exactly
// the state at that boundary, and re-opening never errors.
func TestCrashRecoveryPropertyRandomCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := t.TempDir()
	src := filepath.Join(base, "src")
	s, err := Open(src, WithSeed(seedGraph()), WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}

	// Mutate through the store while maintaining the expected graph at
	// every batch boundary.
	expect := []*graph.Graph{seedGraph()} // index = batches committed
	boundaries := []uint64{0}             // version at each boundary
	version := uint64(0)
	const batches = 12
	for i := 0; i < batches; i++ {
		model := expect[len(expect)-1].Clone()
		size := 1 + rng.Intn(3)
		err := s.Update(func(tx *Tx) error {
			for j := 0; j < size; j++ {
				switch rng.Intn(4) {
				case 0:
					name := fmt.Sprintf("n%d-%d", i, j)
					tx.AddNode(name, "t")
					model.AddNode(name, "t")
				default:
					u := graph.NodeID(rng.Intn(model.NumNodes()))
					v := graph.NodeID(rng.Intn(model.NumNodes()))
					label := []string{"x", "y", "z"}[rng.Intn(3)]
					if rng.Intn(3) == 0 && model.HasEdge(u, label, v) {
						if err := tx.RemoveEdge(u, label, v); err != nil {
							return err
						}
						model.RemoveEdge(u, label, v)
					} else {
						if err := tx.AddEdge(u, label, v); err != nil {
							return err
						}
						model.AddEdge(u, label, v)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		version += uint64(size)
		expect = append(expect, model)
		boundaries = append(boundaries, version)
	}
	// Crash without Close; fsync=always means every byte is on disk.
	segs := walFiles(t, src)
	if len(segs) != 1 {
		t.Fatalf("expected one segment, got %v", segs)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	ckpts := listCheckpoints(src)
	if len(ckpts) != 1 {
		t.Fatalf("checkpoints = %+v", ckpts)
	}
	ckptBytes, err := os.ReadFile(ckpts[0].path)
	if err != nil {
		t.Fatal(err)
	}

	versionToBatch := make(map[uint64]int, len(boundaries))
	for i, v := range boundaries {
		versionToBatch[v] = i
	}

	// Sampled byte cuts plus a few checksum corruptions.
	cuts := map[int64]bool{0: true, int64(len(full)): true}
	for len(cuts) < 60 {
		cuts[int64(rng.Intn(len(full)+1))] = true
	}
	caseNo := 0
	runCase := func(mutate func(buf []byte) []byte) {
		caseNo++
		dir := filepath.Join(base, fmt.Sprintf("case-%d", caseNo))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(ckpts[0].path)), ckptBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), mutate(append([]byte(nil), full...)), 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(dir)
		if err != nil {
			t.Fatalf("case %d: recovery error: %v", caseNo, err)
		}
		defer rec.Close()
		got := rec.Version()
		bi, ok := versionToBatch[got]
		if !ok {
			t.Fatalf("case %d: recovered version %d is not a batch boundary %v (torn batch leaked)", caseNo, got, boundaries)
		}
		snap, _ := rec.Snapshot()
		if !snap.Materialize().Equal(expect[bi]) {
			t.Fatalf("case %d: recovered graph at version %d does not match the committed prefix", caseNo, got)
		}
	}
	for cut := range cuts {
		runCase(func(buf []byte) []byte { return buf[:cut] })
	}
	for i := 0; i < 10; i++ {
		pos := len(full) - 1 - rng.Intn(len(full)/3)
		runCase(func(buf []byte) []byte { buf[pos] ^= 0x55; return buf })
	}
	s.Close()
}

func TestCheckpointCadenceAndTrim(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSeed(seedGraph()), WithCheckpointEvery(10), WithSegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	const n = 55
	for i := 0; i < n; i++ {
		if err := s.AddEdge(0, "y", 1); err != nil {
			t.Fatal(err)
		}
	}
	// Cadence checkpoints run on a background goroutine (they must not
	// stall the commit path); wait for the in-flight one to settle.
	deadline := time.Now().Add(10 * time.Second)
	for s.dur.inFlight.Load() || s.dur.checkpoints.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cadence checkpoint never completed: %+v", s.DurabilityStats())
		}
		time.Sleep(time.Millisecond)
	}
	ds := s.DurabilityStats()
	if ds.LastCheckpointVersion < 10 || ds.LastCheckpointVersion > n {
		t.Fatalf("cadence checkpoints missing: %+v", ds)
	}
	// Only the newest checkpoint file survives.
	if cs := listCheckpoints(dir); len(cs) != 1 || cs[0].version != ds.LastCheckpointVersion {
		t.Fatalf("checkpoint files = %+v", cs)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Version() != n {
		t.Fatalf("recovered version = %d, want %d", s2.Version(), n)
	}
	rs := s2.DurabilityStats().Recovery
	if rs.CheckpointVersion != ds.LastCheckpointVersion {
		t.Fatalf("recovery started at %d, want the newest checkpoint %d", rs.CheckpointVersion, ds.LastCheckpointVersion)
	}
	if rs.ReplayedRecords != n-ds.LastCheckpointVersion {
		t.Fatalf("replayed %d records, want %d (checkpoint + tail, not full history)", rs.ReplayedRecords, n-ds.LastCheckpointVersion)
	}
	snap, _ := s2.Snapshot()
	if snap.NumEdges() != 1+n {
		t.Fatalf("edges = %d, want %d", snap.NumEdges(), 1+n)
	}
}

func TestWALAppendFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSeed(seedGraph()))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(0, "y", 1); err != nil {
		t.Fatal(err)
	}
	// Force append failure by closing the WAL out from under the store.
	s.dur.wal.Close()
	err = s.AddEdge(0, "y", 1)
	if err == nil || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("append failure not surfaced: %v", err)
	}
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("durability fault not marked with ErrDurability: %v", err)
	}
	if s.Version() != 1 {
		t.Fatalf("version advanced past a failed append: %d", s.Version())
	}
	snap, _ := s.Snapshot()
	if snap.NumEdges() != 2 {
		t.Fatalf("failed batch published: %d edges", snap.NumEdges())
	}
}

func TestManualCheckpointAndInMemoryStoreErrors(t *testing.T) {
	s := New(seedGraph())
	if s.Durable() {
		t.Fatal("in-memory store claims durability")
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on in-memory store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close on in-memory store: %v", err)
	}
	if ds := s.DurabilityStats(); ds.Enabled {
		t.Fatalf("in-memory durability stats = %+v", ds)
	}

	dir := t.TempDir()
	d, err := Open(dir, WithSeed(seedGraph()), WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 3; i++ {
		if err := d.AddEdge(0, "y", 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if v := d.DurabilityStats().LastCheckpointVersion; v != 3 {
		t.Fatalf("manual checkpoint at version %d, want 3", v)
	}
}

func TestLogFeedPagingAndGap(t *testing.T) {
	s := New(seedGraph())
	s.SetLogRetention(4)
	for i := 0; i < 10; i++ {
		if err := s.AddEdge(0, "y", 1); err != nil {
			t.Fatal(err)
		}
	}
	// Versions 1..6 were dropped (retention 4 keeps 7..10).
	feed := s.LogFeed(0, 0)
	if !feed.Gap || feed.DroppedThrough != 6 {
		t.Fatalf("gap not signaled: %+v", feed)
	}
	if len(feed.Updates) != 4 || feed.Updates[0].Version != 7 {
		t.Fatalf("feed updates = %+v", feed.Updates)
	}
	// A follower already past the drop point sees no gap.
	feed = s.LogFeed(8, 0)
	if feed.Gap || len(feed.Updates) != 2 || feed.More {
		t.Fatalf("contiguous feed = %+v", feed)
	}
	// Paging: a bounded page signals More and resumes cleanly.
	feed = s.LogFeed(6, 2)
	if feed.Gap || !feed.More || len(feed.Updates) != 2 || feed.Updates[1].Version != 8 {
		t.Fatalf("page 1 = %+v", feed)
	}
	feed = s.LogFeed(feed.Updates[len(feed.Updates)-1].Version, 2)
	if feed.More || len(feed.Updates) != 2 || feed.Updates[1].Version != 10 {
		t.Fatalf("page 2 = %+v", feed)
	}
	// Caught up: empty page, no gap, version matches.
	feed = s.LogFeed(10, 2)
	if feed.Gap || feed.More || len(feed.Updates) != 0 || feed.Version != 10 {
		t.Fatalf("caught-up feed = %+v", feed)
	}
}

// TestDurableStoreSyncPolicies exercises the interval and never
// policies end-to-end (mutate, close, reopen) — with a clean Close both
// flush everything.
func TestDurableStoreSyncPolicies(t *testing.T) {
	for _, p := range []wal.SyncPolicy{wal.SyncEvery, wal.SyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, WithSeed(seedGraph()), WithSync(p))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if err := s.AddEdge(0, "y", 1); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if s2.Version() != 5 {
				t.Fatalf("recovered version = %d, want 5", s2.Version())
			}
		})
	}
}

// TestDurableConcurrentReadersAndWriters drives interleaved durable
// mutations, snapshot reads and feed reads; run with -race. The WAL
// append rides the writer lock, so this is also the mutation-storm
// shape the crash property test cuts.
func TestDurableConcurrentReadersAndWriters(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSeed(seedGraph()), WithCheckpointEvery(64))
	if err != nil {
		t.Fatal(err)
	}
	const iters = 100
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.AddEdge(0, "y", 1)
				s.RemoveEdge(0, "y", 1)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Read(func(g *graph.Snapshot, _ uint64) error {
					g.Degree(0)
					return nil
				})
				s.LogFeed(0, 32)
				s.DurabilityStats()
			}
		}()
	}
	wg.Wait()
	if got := s.Version(); got != 8*iters {
		t.Errorf("version = %d, want %d", got, 8*iters)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Version(); got != 8*iters {
		t.Errorf("recovered version = %d, want %d", got, 8*iters)
	}
}
