// Package store is a multi-version concurrency-control (MVCC) graph
// store. The current version is an immutable graph.Snapshot behind an
// atomic pointer: Snapshot() costs one atomic load — readers never take
// a lock and are never blocked by writers. Write transactions build the
// next version copy-on-write through a graph.Builder (only the touched
// labels' adjacency and, on node additions, the node table are copied)
// and publish it atomically; a transaction whose callback fails
// publishes nothing, so batches are all-or-nothing.
//
// Version numbers are monotonic and bump once per mutation; a batch of
// k mutations moves the store forward k versions in one publish. The
// bounded update log records every committed mutation with the version
// it produced, and a registered observer (OnUpdate) sees each committed
// batch — internal/server uses it to age the evaluator's versioned
// commuting-matrix cache.
//
// Readers that want their version accounted for in monitoring pin it:
// Pin() registers the version until Release, and PinStats reports the
// live version and the spread of pinned versions, which is the lag a
// slow reader imposes on memory (old snapshots stay reachable while
// pinned).
package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"relsim/internal/graph"
)

// ErrClosed marks a mutation refused because the store has been closed
// (graceful shutdown already ran). It is a clean, expected condition —
// the server maps it to 503 — unlike ErrDurability, which is a storage
// fault on a live store. Test with errors.Is.
var ErrClosed = errors.New("store is closed")

// Op discriminates update-log records.
type Op string

// The mutation kinds recorded in the update log.
const (
	OpAddNode    Op = "add-node"
	OpAddEdge    Op = "add-edge"
	OpRemoveEdge Op = "remove-edge"
)

// Update is one record of the update log: the mutation and the version
// the store reached by applying it. Records are self-contained — an
// add-node record carries the display name and type — so replaying a
// log (crash recovery, a catching-up follower) reconstructs the graph
// exactly, metadata included.
type Update struct {
	Version uint64       `json:"version"`
	Op      Op           `json:"op"`
	Node    graph.NodeID `json:"node"`           // OpAddNode
	Name    string       `json:"name,omitempty"` // OpAddNode
	Type    string       `json:"type,omitempty"` // OpAddNode
	Edge    graph.Edge   `json:"edge"`           // edge ops
}

// DefaultLogCap bounds the retained update log. Older records are
// dropped; the version counter itself is never reset.
const DefaultLogCap = 256

// versioned pairs a snapshot with the version it represents; it is the
// unit published through the atomic pointer.
type versioned struct {
	snap    *graph.Snapshot
	version uint64
}

// Store is an MVCC graph store safe for concurrent use.
type Store struct {
	current atomic.Pointer[versioned]

	// writeMu serializes writers (version chain is single-writer);
	// readers never touch it.
	writeMu  sync.Mutex
	onUpdate func([]Update)

	// mu guards the update log and the pin registry.
	mu     sync.Mutex
	log    []Update
	logCap int
	// logDropped is the highest version ever dropped from the bounded
	// log — the gap-detection watermark for the replication feed: a
	// follower asking for records since < logDropped has missed some and
	// must resynchronize from a checkpoint.
	logDropped uint64
	pins       map[uint64]int

	// dur is the durability layer (write-ahead log + checkpoints); nil
	// for a purely in-memory store built with New.
	dur *durable

	// closed is set by Close under writeMu: every later write
	// transaction fails fast with ErrClosed instead of racing the WAL
	// teardown into a 500 or a panic.
	closed atomic.Bool

	// obs is the telemetry sink (commit latency, checkpoint duration);
	// nil until Instrument installs it. Atomic so instrumentation can
	// land on a store that is already serving.
	obs atomic.Pointer[storeObs]
}

// New wraps g in a store at version 0. The snapshot is taken eagerly;
// the caller may keep using g, but later mutations to it are invisible
// to the store.
func New(g *graph.Graph) *Store {
	if g == nil {
		g = graph.New()
	}
	s := &Store{logCap: DefaultLogCap, pins: make(map[uint64]int)}
	s.current.Store(&versioned{snap: g.Snapshot(), version: 0})
	return s
}

// OnUpdate registers fn to observe every committed mutation batch. fn
// runs after the new version is published, still under the writer lock,
// so observers see batches in commit order exactly once. With versioned
// snapshots the observer is not needed for correctness (readers at old
// versions keep consistent data); it is the hook for proactive cache
// aging. Keep fn fast; it must not call Update (writer re-entry
// deadlocks). Only one observer is supported; a second call replaces
// it.
func (s *Store) OnUpdate(fn func([]Update)) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.onUpdate = fn
}

// Snapshot returns the current immutable snapshot and its version with
// a single atomic load — the zero-lock read path. The snapshot stays
// consistent forever; hold it as long as needed.
func (s *Store) Snapshot() (*graph.Snapshot, uint64) {
	cur := s.current.Load()
	return cur.snap, cur.version
}

// View returns the current immutable view and its version — the
// implementation-agnostic read path shared with ShardedStore (for a
// monolithic store the view is the *graph.Snapshot itself).
func (s *Store) View() (graph.View, uint64) {
	cur := s.current.Load()
	return cur.snap, cur.version
}

// Version returns the current store version: the number of mutations
// ever committed. It starts at 0 and bumps by one per mutation.
func (s *Store) Version() uint64 { return s.current.Load().version }

// Read runs fn against the current snapshot. It is sugar over
// Snapshot(): no lock is held, fn may run as long as it likes without
// blocking writers, and the snapshot may be retained past the call.
func (s *Store) Read(fn func(snap *graph.Snapshot, version uint64) error) error {
	snap, v := s.Snapshot()
	return fn(snap, v)
}

// Pin pins the current version for monitoring: the returned Pin's
// snapshot is the reader's consistent view, and the version counts
// toward PinStats until Release. Release is idempotent. The load and
// the registration happen under the same mutex commits publish under,
// so a pin is never invisible to a concurrent commit's OldestPinned
// pass.
func (s *Store) Pin() *Pin {
	s.mu.Lock()
	cur := s.current.Load()
	s.pins[cur.version]++
	s.mu.Unlock()
	return &Pin{owner: s, view: cur.snap, version: cur.version}
}

// unpin deregisters one reader of version (Pin.Release).
func (s *Store) unpin(version uint64) {
	s.mu.Lock()
	if n := s.pins[version]; n <= 1 {
		delete(s.pins, version)
	} else {
		s.pins[version] = n - 1
	}
	s.mu.Unlock()
}

// pinOwner is the store side of a Pin: whatever registered the pin
// takes it back on Release. Both Store and ShardedStore implement it.
type pinOwner interface {
	unpin(version uint64)
}

// Pin is a pinned view: one reader's consistent view of one version.
type Pin struct {
	owner    pinOwner
	view     graph.View
	version  uint64
	released atomic.Bool
}

// View returns the pinned graph view.
func (p *Pin) View() graph.View { return p.view }

// Snapshot returns the pinned monolithic snapshot, or nil when the pin
// was taken on a sharded store (use View there).
func (p *Pin) Snapshot() *graph.Snapshot {
	if s, ok := p.view.(*graph.Snapshot); ok {
		return s
	}
	return nil
}

// Version returns the pinned version.
func (p *Pin) Version() uint64 { return p.version }

// Release unpins. Idempotent; safe to defer.
func (p *Pin) Release() {
	if p.released.Swap(true) {
		return
	}
	p.owner.unpin(p.version)
}

// PinStats reports the live version and the currently pinned versions
// (ascending, with reader counts). Spread is live − oldest pinned: how
// far the slowest pinned reader trails the writers.
type PinStats struct {
	Live    uint64   `json:"live_version"`
	Pinned  []uint64 `json:"pinned_versions,omitempty"`
	Readers int      `json:"pinned_readers"`
	Spread  uint64   `json:"version_spread"`
}

// PinStats returns a point-in-time pin summary.
func (s *Store) PinStats() PinStats {
	live := s.Version()
	s.mu.Lock()
	ps := PinStats{Live: live}
	for v, n := range s.pins {
		ps.Pinned = append(ps.Pinned, v)
		ps.Readers += n
	}
	s.mu.Unlock()
	sort.Slice(ps.Pinned, func(i, j int) bool { return ps.Pinned[i] < ps.Pinned[j] })
	if len(ps.Pinned) > 0 && ps.Pinned[0] < live {
		ps.Spread = live - ps.Pinned[0]
	}
	return ps
}

// OldestPinned returns the oldest pinned version, or the live version
// when nothing is pinned. Cache aging uses it as the eviction floor:
// entries below it can serve no pinned reader.
func (s *Store) OldestPinned() uint64 {
	live := s.Version()
	s.mu.Lock()
	defer s.mu.Unlock()
	oldest := live
	for v := range s.pins {
		if v < oldest {
			oldest = v
		}
	}
	return oldest
}

// Log returns the retained update records with version > since, oldest
// first. Records older than the retention bound are gone; a caller that
// finds a gap (first returned version > since+1) must resynchronize.
func (s *Store) Log(since uint64) []Update {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Update
	for _, u := range s.log {
		if u.Version > since {
			out = append(out, u)
		}
	}
	return out
}

// Feed is one page of the replication feed (GET /log): the committed
// updates with version > Since, oldest first, bounded by the caller's
// page size. Gap reports that records in (Since, DroppedThrough] have
// aged out of the bounded log — the follower's view cannot be made
// contiguous from this feed and it must resynchronize (re-bootstrap
// from a snapshot or checkpoint) before resuming.
type Feed struct {
	Since uint64 `json:"since"`
	// Version is the store's live version at feed time. A follower is
	// caught up when the last delivered update reaches it.
	Version uint64 `json:"version"`
	Gap     bool   `json:"gap"`
	// DroppedThrough is the highest version evicted from the bounded
	// log; 0 when nothing has been dropped.
	DroppedThrough uint64 `json:"dropped_through"`
	// More reports that the page bound truncated the answer: call again
	// with since = the last delivered version.
	More    bool     `json:"more"`
	Updates []Update `json:"updates"`
}

// LogFeed assembles one replication-feed page: up to max records with
// version > since (max <= 0 means unbounded), plus the gap signal. The
// page is cut at batch granularity only in the sense that updates are
// versioned individually; a follower resumes from the last version it
// received.
func (s *Store) LogFeed(since uint64, max int) Feed {
	f, _ := s.LogFeedContext(context.Background(), since, max)
	return f
}

// LogFeedContext is LogFeed honoring a deadline. A page the in-memory
// bounded log can serve contiguously comes from memory; when since has
// aged out of it (since < logDropped) and the store is durable, the
// page is read back from the WAL instead — so a follower that was
// partitioned longer than the in-memory retention catches up from disk
// rather than re-bootstrapping, as long as checkpoint trimming has not
// retired the segments it needs. Only when the WAL cannot bridge the
// range contiguously does the feed report a (now hard) gap. The
// returned error is only ever the context's: WAL read faults degrade to
// the gap signal, never to a failed page.
func (s *Store) LogFeedContext(ctx context.Context, since uint64, max int) (Feed, error) {
	if err := ctx.Err(); err != nil {
		return Feed{Since: since}, err
	}
	mem, ok := s.memFeed(since, max)
	if ok {
		return mem, nil
	}
	// The in-memory log has dropped records the page needs; read them
	// back from the WAL. No store lock is held during the file scan, so
	// a slow disk page never blocks commits.
	live := s.Version()
	if f, ok := s.walFeed(ctx, since, max, live); ok {
		return f, nil
	} else if err := ctx.Err(); err != nil {
		return f, err
	}
	// The WAL could not bridge (since+1 trimmed by a checkpoint, or no
	// durability layer at all): hard gap. Serve the already-built
	// retained-tail page with its gap signal, exactly like the
	// pre-WAL-backed feed.
	return mem, nil
}

// memFeed builds a feed page from the bounded in-memory log, reporting
// whether the page is contiguous from since (no gap). The version is
// read inside the critical section commits publish under, so the
// reported version is never older than the page's last update (the
// follower's caught-up check relies on that ordering).
func (s *Store) memFeed(since uint64, max int) (Feed, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := s.current.Load().version
	f := Feed{Since: since, Version: live, DroppedThrough: s.logDropped, Gap: since < s.logDropped}
	for _, u := range s.log {
		if u.Version <= since {
			continue
		}
		if max > 0 && len(f.Updates) >= max {
			f.More = true
			break
		}
		f.Updates = append(f.Updates, u)
	}
	return f, !f.Gap
}

// SetLogRetention bounds the in-memory update log to n records,
// trimming immediately. The version counter and the WAL are unaffected;
// only the replication feed's reach shrinks. n <= 0 resets to
// DefaultLogCap.
func (s *Store) SetLogRetention(n int) {
	if n <= 0 {
		n = DefaultLogCap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logCap = n
	s.trimLogLocked()
}

// Stats summarizes the store for monitoring.
type Stats struct {
	Version uint64   `json:"version"`
	Nodes   int      `json:"nodes"`
	Edges   int      `json:"edges"`
	Labels  []string `json:"labels"`
}

// Stats returns a consistent snapshot of version and graph size.
func (s *Store) Stats() Stats {
	snap, v := s.Snapshot()
	return Stats{Version: v, Nodes: snap.NumNodes(), Edges: snap.NumEdges(), Labels: snap.Labels()}
}

// txBackend is the mutation target a Tx builds against: a plain
// copy-on-write *graph.Builder for the monolithic store, a
// shard-routing builder fan-out for ShardedStore. The Tx API and every
// feed consumer written against it (followers, recovery) is oblivious
// to which one is underneath.
type txBackend interface {
	Has(id graph.NodeID) bool
	NodeByName(name string) (graph.Node, bool)
	Base() *graph.Snapshot
	AddNode(name, typ string) graph.NodeID
	AddEdge(u graph.NodeID, label string, v graph.NodeID) error
	RemoveEdge(u graph.NodeID, label string, v graph.NodeID) bool
}

var _ txBackend = (*graph.Builder)(nil)

// Tx is a write transaction: a batch of mutations built copy-on-write
// against the version current at transaction start, committed
// atomically (all-or-nothing). Obtain one via Update.
type Tx struct {
	b       txBackend
	base    uint64
	updates []Update
}

// Has reports whether id is a node, seeing the transaction's own
// additions (read-your-writes).
func (tx *Tx) Has(id graph.NodeID) bool { return tx.b.Has(id) }

// NodeByName resolves a display name, seeing the transaction's own
// additions.
func (tx *Tx) NodeByName(name string) (graph.Node, bool) { return tx.b.NodeByName(name) }

// Base returns the snapshot the transaction derives from — the
// pre-transaction state, useful for validate-before-mutate checks. On a
// sharded store this is shard 0's snapshot: the node table is complete
// (every shard replicates it), but it holds only shard 0's edges.
func (tx *Tx) Base() *graph.Snapshot { return tx.b.Base() }

// AddNode adds a node and returns its id.
func (tx *Tx) AddNode(name, typ string) graph.NodeID {
	id := tx.b.AddNode(name, typ)
	tx.record(Update{Op: OpAddNode, Node: id, Name: name, Type: typ})
	return id
}

// AddEdge adds the edge (u, label, v), validating endpoints and label.
func (tx *Tx) AddEdge(u graph.NodeID, label string, v graph.NodeID) error {
	if err := tx.b.AddEdge(u, label, v); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tx.record(Update{Op: OpAddEdge, Edge: graph.Edge{From: u, Label: label, To: v}})
	return nil
}

// RemoveEdge removes one (u, label, v) edge.
func (tx *Tx) RemoveEdge(u graph.NodeID, label string, v graph.NodeID) error {
	if !tx.b.RemoveEdge(u, label, v) {
		return fmt.Errorf("store: remove edge (%d,%q,%d): no such edge", u, label, v)
	}
	tx.record(Update{Op: OpRemoveEdge, Edge: graph.Edge{From: u, Label: label, To: v}})
	return nil
}

// Apply replays one logged update into the transaction — the single
// op-dispatch shared by every feed consumer (a follower applying a
// replication page uses it verbatim). Node ids must land exactly where
// the log says (ids are dense and assigned in order, so same-order
// replay is deterministic); version continuity across updates is the
// caller's check, since only the caller knows what stream it is
// applying.
func (tx *Tx) Apply(u Update) error {
	switch u.Op {
	case OpAddNode:
		if id := tx.AddNode(u.Name, u.Type); id != u.Node {
			return fmt.Errorf("store: applied node id %d, log says %d", id, u.Node)
		}
		return nil
	case OpAddEdge:
		return tx.AddEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	case OpRemoveEdge:
		return tx.RemoveEdge(u.Edge.From, u.Edge.Label, u.Edge.To)
	}
	return fmt.Errorf("store: unknown op %q", u.Op)
}

// Version returns the version the transaction commits at: the base
// version plus the mutations recorded so far. If the transaction's
// callback returns an error nothing commits and the store stays at the
// base version.
func (tx *Tx) Version() uint64 { return tx.base + uint64(len(tx.updates)) }

func (tx *Tx) record(u Update) {
	u.Version = tx.base + uint64(len(tx.updates)) + 1
	tx.updates = append(tx.updates, u)
}

// Update runs fn as a write transaction. Mutations accumulate in a
// copy-on-write builder; if fn returns nil the batch is appended to the
// write-ahead log (when the store is durable), then the next snapshot
// is built and published atomically, the update log grows by the batch,
// and the OnUpdate observer runs. If fn returns an error — or the WAL
// append fails — NOTHING is published: the batch rolls back wholesale
// and readers never see partial state. The append happens strictly
// before publication, so a version a reader can observe is always
// already on disk (as durable as the fsync policy promises). Writers
// are serialized; readers are never blocked.
func (s *Store) Update(fn func(tx *Tx) error) error {
	start := time.Now()
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	// Checked under writeMu, the same lock Close sets it under: a
	// mutation either fully commits before Close proceeds or fails fast
	// here — it can never race the WAL teardown into a torn append.
	if s.closed.Load() {
		return fmt.Errorf("store: %w", ErrClosed)
	}
	cur := s.current.Load()
	b := graph.NewBuilder(cur.snap)
	tx := &Tx{b: b, base: cur.version}
	if err := fn(tx); err != nil {
		return err
	}
	if len(tx.updates) == 0 {
		return nil
	}
	next := &versioned{snap: b.Build(), version: cur.version + uint64(len(tx.updates))}
	if s.dur != nil {
		if err := s.dur.appendBatch(next.version, tx.updates); err != nil {
			// Nothing published: the batch rolls back, and any torn bytes
			// the failed append left behind are exactly what recovery cuts.
			// ErrDurability lets callers distinguish this server-side fault
			// (disk full, I/O error) from a validation error fn returned.
			return fmt.Errorf("store: wal append (batch rolled back): %w: %w", ErrDurability, err)
		}
	}
	// Publish under s.mu (alongside the log append) so Pin's
	// load-and-register is atomic with respect to commits: after this
	// critical section, any reader pinning the old version is already
	// registered, and any new Pin sees the new version. Lock-free
	// Snapshot()/Version() readers are unaffected — the pointer store
	// is still atomic.
	s.mu.Lock()
	s.current.Store(next)
	s.log = append(s.log, tx.updates...)
	s.trimLogLocked()
	s.mu.Unlock()
	if s.onUpdate != nil {
		s.onUpdate(tx.updates)
	}
	// Observed before the (asynchronous) checkpoint cadence check: commit
	// latency is what the caller waited, writeMu wait included.
	s.observeCommit(start)
	if s.dur != nil {
		s.maybeCheckpointLocked(next)
	}
	return nil
}

// trimLogLocked enforces the bounded-log retention and advances the
// gap-detection watermark past every dropped record. s.mu held.
func (s *Store) trimLogLocked() {
	if over := len(s.log) - s.logCap; over > 0 {
		s.logDropped = s.log[over-1].Version
		s.log = append(s.log[:0:0], s.log[over:]...)
	}
}

// Reset replaces the store's entire state with g at version — the
// follower-bootstrap primitive. A replica that finds a gap in the
// leader's feed fetches a checkpoint and Resets onto it, then resumes
// tailing from version. The version may only move forward (equal is
// allowed: re-bootstrapping onto the version already held is a no-op
// graph-wise on a same-lineage leader). The in-memory update log is
// cleared and the gap watermark set to version — records at or below it
// were never applied here and must not be served contiguously. On a
// durable store the new state is checkpointed before it is published
// (the same durability-before-visibility discipline commits follow), so
// a restart recovers the bootstrapped state, not the pre-gap one.
// The OnUpdate observer does not run: there is no mutation batch, and
// version-keyed caches stay correct because no previously-seen version
// changes meaning.
func (s *Store) Reset(g *graph.Graph, version uint64) error {
	if g == nil {
		g = graph.New()
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.closed.Load() {
		return fmt.Errorf("store: %w", ErrClosed)
	}
	cur := s.current.Load()
	if version < cur.version {
		return fmt.Errorf("store: reset to version %d would move backwards (live %d)", version, cur.version)
	}
	next := &versioned{snap: g.Snapshot(), version: version}
	if s.dur != nil {
		if err := s.checkpointNow(next); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.current.Store(next)
	s.log = nil
	s.logDropped = version
	s.mu.Unlock()
	return nil
}

// AddNode adds a single node outside a batch.
func (s *Store) AddNode(name, typ string) graph.NodeID {
	var id graph.NodeID
	s.Update(func(tx *Tx) error {
		id = tx.AddNode(name, typ)
		return nil
	})
	return id
}

// AddEdge adds a single edge outside a batch.
func (s *Store) AddEdge(u graph.NodeID, label string, v graph.NodeID) error {
	return s.Update(func(tx *Tx) error { return tx.AddEdge(u, label, v) })
}

// RemoveEdge removes a single edge outside a batch.
func (s *Store) RemoveEdge(u graph.NodeID, label string, v graph.NodeID) error {
	return s.Update(func(tx *Tx) error { return tx.RemoveEdge(u, label, v) })
}
