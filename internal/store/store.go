// Package store wraps graph.Graph in a versioned, mutable store: every
// mutation runs under a write lock, bumps a monotonically increasing
// version number, and is appended to a bounded update log. Readers take
// a shared read lock for the duration of an evaluation, so a query
// always sees one consistent graph version.
//
// The update log is what makes live serving compatible with the
// evaluator's commuting-matrix cache: an eval.Evaluator caches M_p per
// pattern and those matrices go stale when the graph changes. The store
// reports every change to a registered observer (see OnUpdate), which
// internal/server uses to evict exactly the cached matrices whose
// pattern mentions a touched edge label — incremental invalidation
// instead of a full cache flush on every write.
package store

import (
	"fmt"
	"sync"

	"relsim/internal/graph"
)

// Op discriminates update-log records.
type Op string

// The mutation kinds recorded in the update log.
const (
	OpAddNode    Op = "add-node"
	OpAddEdge    Op = "add-edge"
	OpRemoveEdge Op = "remove-edge"
)

// Update is one record of the update log: the mutation and the version
// the store reached by applying it.
type Update struct {
	Version uint64       `json:"version"`
	Op      Op           `json:"op"`
	Node    graph.NodeID `json:"node"` // OpAddNode
	Edge    graph.Edge   `json:"edge"` // edge ops
}

// DefaultLogCap bounds the retained update log. Older records are
// dropped; the version counter itself is never reset.
const DefaultLogCap = 256

// Store is a versioned, mutable graph store safe for concurrent use.
type Store struct {
	mu       sync.RWMutex
	g        *graph.Graph
	version  uint64
	log      []Update
	logCap   int
	onUpdate func([]Update)
}

// New wraps g in a store. The caller must not mutate or read g directly
// afterwards; all access goes through the store.
func New(g *graph.Graph) *Store {
	if g == nil {
		g = graph.New()
	}
	return &Store{g: g, logCap: DefaultLogCap}
}

// OnUpdate registers fn to observe every applied mutation batch. fn runs
// while the write lock is held — before any subsequent reader can see
// the new graph state — which is what lets an observer invalidate
// derived caches without a window where a reader could re-populate them
// from the old state. Keep fn fast; it must not call back into the
// store. Only one observer is supported; a second call replaces it.
func (s *Store) OnUpdate(fn func([]Update)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onUpdate = fn
}

// Version returns the current store version: the number of mutations
// ever applied. It starts at 0 and bumps by one per mutation.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Graph returns the wrapped graph. The pointer is stable across
// mutations (evaluators may hold it), but it must only be dereferenced
// inside Read or Update — unguarded access races with writers.
func (s *Store) Graph() *graph.Graph { return s.g }

// Read runs fn under the shared read lock, passing the graph and the
// version it is at. fn must not mutate the graph, retain it past the
// call, or call back into the store (a nested lock acquisition can
// deadlock against a queued writer). All evaluation over a live store
// belongs inside Read so a query sees one consistent version end to end.
func (s *Store) Read(fn func(g *graph.Graph, version uint64) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fn(s.g, s.version)
}

// Log returns the retained update records with version > since, oldest
// first. Records older than the retention bound are gone; a caller that
// finds a gap (first returned version > since+1) must resynchronize.
func (s *Store) Log(since uint64) []Update {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Update
	for _, u := range s.log {
		if u.Version > since {
			out = append(out, u)
		}
	}
	return out
}

// Stats summarizes the store for monitoring.
type Stats struct {
	Version uint64   `json:"version"`
	Nodes   int      `json:"nodes"`
	Edges   int      `json:"edges"`
	Labels  []string `json:"labels"`
}

// Stats returns a consistent snapshot of version and graph size.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{Version: s.version, Nodes: s.g.NumNodes(), Edges: s.g.NumEdges(), Labels: s.g.Labels()}
}

// Tx is a write transaction: a batch of mutations applied under one
// write lock. Obtain one via Update.
type Tx struct {
	s       *Store
	updates []Update
}

// Graph exposes the graph for read-your-writes resolution (for example
// looking up a node added earlier in the same transaction). The write
// lock is held, so plain reads are safe; mutate only via the Tx methods
// so the version counter and update log stay truthful.
func (tx *Tx) Graph() *graph.Graph { return tx.s.g }

// AddNode adds a node and returns its id.
func (tx *Tx) AddNode(name, typ string) graph.NodeID {
	id := tx.s.g.AddNode(name, typ)
	tx.record(Update{Op: OpAddNode, Node: id})
	return id
}

// AddEdge adds the edge (u, label, v), validating endpoints and label.
func (tx *Tx) AddEdge(u graph.NodeID, label string, v graph.NodeID) error {
	if !tx.s.g.Has(u) || !tx.s.g.Has(v) {
		return fmt.Errorf("store: add edge (%d,%q,%d): endpoint does not exist", u, label, v)
	}
	if label == "" {
		return fmt.Errorf("store: add edge (%d,,%d): empty label", u, v)
	}
	tx.s.g.AddEdge(u, label, v)
	tx.record(Update{Op: OpAddEdge, Edge: graph.Edge{From: u, Label: label, To: v}})
	return nil
}

// RemoveEdge removes one (u, label, v) edge.
func (tx *Tx) RemoveEdge(u graph.NodeID, label string, v graph.NodeID) error {
	if !tx.s.g.RemoveEdge(u, label, v) {
		return fmt.Errorf("store: remove edge (%d,%q,%d): no such edge", u, label, v)
	}
	tx.record(Update{Op: OpRemoveEdge, Edge: graph.Edge{From: u, Label: label, To: v}})
	return nil
}

// Version returns the store version as of the transaction's last
// mutation. Captured under the write lock, it is the watermark to hand
// back to clients: reading Store.Version after the transaction commits
// can already include other writers' mutations.
func (tx *Tx) Version() uint64 { return tx.s.version }

func (tx *Tx) record(u Update) {
	tx.s.version++
	u.Version = tx.s.version
	tx.updates = append(tx.updates, u)
}

// Update runs fn as a write transaction. Mutations apply in order as fn
// makes them; if fn returns an error, mutations already applied persist
// (there is no rollback) and the error is returned, so validate before
// mutating when a batch must be all-or-nothing. The registered OnUpdate
// observer sees every applied record either way.
func (s *Store) Update(fn func(tx *Tx) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx := &Tx{s: s}
	err := fn(tx)
	if len(tx.updates) > 0 {
		s.log = append(s.log, tx.updates...)
		if over := len(s.log) - s.logCap; over > 0 {
			s.log = append(s.log[:0:0], s.log[over:]...)
		}
		if s.onUpdate != nil {
			s.onUpdate(tx.updates)
		}
	}
	return err
}

// AddNode adds a single node outside a batch.
func (s *Store) AddNode(name, typ string) graph.NodeID {
	var id graph.NodeID
	s.Update(func(tx *Tx) error {
		id = tx.AddNode(name, typ)
		return nil
	})
	return id
}

// AddEdge adds a single edge outside a batch.
func (s *Store) AddEdge(u graph.NodeID, label string, v graph.NodeID) error {
	return s.Update(func(tx *Tx) error { return tx.AddEdge(u, label, v) })
}

// RemoveEdge removes a single edge outside a batch.
func (s *Store) RemoveEdge(u graph.NodeID, label string, v graph.NodeID) error {
	return s.Update(func(tx *Tx) error { return tx.RemoveEdge(u, label, v) })
}
