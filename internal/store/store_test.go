package store

import (
	"sync"
	"testing"

	"relsim/internal/graph"
)

func newTestStore(t *testing.T) (*Store, graph.NodeID, graph.NodeID) {
	t.Helper()
	g := graph.New()
	a := g.AddNode("a", "t")
	b := g.AddNode("b", "t")
	g.AddEdge(a, "x", b)
	return New(g), a, b
}

func TestVersionMonotonic(t *testing.T) {
	s, a, b := newTestStore(t)
	if s.Version() != 0 {
		t.Fatalf("fresh store version = %d, want 0", s.Version())
	}
	if err := s.AddEdge(a, "y", b); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 1 {
		t.Fatalf("after AddEdge version = %d, want 1", s.Version())
	}
	c := s.AddNode("c", "t")
	if s.Version() != 2 {
		t.Fatalf("after AddNode version = %d, want 2", s.Version())
	}
	if err := s.AddEdge(b, "y", c); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveEdge(b, "y", c); err != nil {
		t.Fatal(err)
	}
	if s.Version() != 4 {
		t.Fatalf("version = %d, want 4", s.Version())
	}
}

func TestMutationsValidate(t *testing.T) {
	s, a, _ := newTestStore(t)
	if err := s.AddEdge(a, "x", 99); err == nil {
		t.Error("AddEdge to missing node: want error")
	}
	if err := s.AddEdge(a, "", a); err == nil {
		t.Error("AddEdge with empty label: want error")
	}
	if err := s.RemoveEdge(a, "nope", a); err == nil {
		t.Error("RemoveEdge of missing edge: want error")
	}
	if s.Version() != 0 {
		t.Errorf("failed mutations bumped version to %d", s.Version())
	}
}

func TestRemoveEdgeRoundTrip(t *testing.T) {
	s, a, b := newTestStore(t)
	if err := s.RemoveEdge(a, "x", b); err != nil {
		t.Fatal(err)
	}
	s.Read(func(g *graph.Snapshot, _ uint64) error {
		if g.NumEdges() != 0 {
			t.Errorf("NumEdges = %d, want 0", g.NumEdges())
		}
		if g.HasLabel("x") {
			t.Error("label x still present after removing its last edge")
		}
		return nil
	})
	if err := s.AddEdge(a, "x", b); err != nil {
		t.Fatal(err)
	}
	s.Read(func(g *graph.Snapshot, _ uint64) error {
		if !g.HasEdge(a, "x", b) {
			t.Error("edge missing after re-add")
		}
		return nil
	})
}

func TestUpdateLogAndObserver(t *testing.T) {
	s, a, b := newTestStore(t)
	var observed []Update
	s.OnUpdate(func(us []Update) { observed = append(observed, us...) })

	err := s.Update(func(tx *Tx) error {
		c := tx.AddNode("c", "t")
		if err := tx.AddEdge(b, "y", c); err != nil {
			return err
		}
		return tx.RemoveEdge(a, "x", b)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(observed) != 3 {
		t.Fatalf("observer saw %d updates, want 3", len(observed))
	}
	wantOps := []Op{OpAddNode, OpAddEdge, OpRemoveEdge}
	for i, u := range observed {
		if u.Op != wantOps[i] {
			t.Errorf("update %d op = %s, want %s", i, u.Op, wantOps[i])
		}
		if u.Version != uint64(i+1) {
			t.Errorf("update %d version = %d, want %d", i, u.Version, i+1)
		}
	}
	log := s.Log(0)
	if len(log) != 3 {
		t.Fatalf("Log(0) returned %d records, want 3", len(log))
	}
	if tail := s.Log(2); len(tail) != 1 || tail[0].Op != OpRemoveEdge {
		t.Errorf("Log(2) = %+v, want the remove-edge record only", tail)
	}
}

func TestLogRetentionBound(t *testing.T) {
	s, a, b := newTestStore(t)
	for i := 0; i < DefaultLogCap+10; i++ {
		if err := s.AddEdge(a, "x", b); err != nil {
			t.Fatal(err)
		}
	}
	log := s.Log(0)
	if len(log) != DefaultLogCap {
		t.Fatalf("retained %d records, want %d", len(log), DefaultLogCap)
	}
	if got, want := log[len(log)-1].Version, s.Version(); got != want {
		t.Errorf("newest retained version = %d, want %d", got, want)
	}
}

// TestConcurrentReadersAndWriters drives interleaved mutations and locked
// reads; run with -race to prove the locking is sound.
func TestConcurrentReadersAndWriters(t *testing.T) {
	s, a, b := newTestStore(t)
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.AddEdge(a, "y", b)
				s.RemoveEdge(a, "y", b)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Read(func(g *graph.Snapshot, _ uint64) error {
					g.Degree(a)
					g.Edges()
					return nil
				})
				s.Stats()
				s.Log(0)
			}
		}()
	}
	wg.Wait()
	if got := s.Version(); got != 8*iters {
		t.Errorf("version = %d, want %d", got, 8*iters)
	}
}
