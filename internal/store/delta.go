package store

import "relsim/internal/sparse"

// BatchDelta is the edge-level summary of a committed update batch, in
// the form the incremental cache maintenance consumes: a signed sparse
// adjacency delta per touched label (added edges +1, removed edges −1)
// plus the node growth. Triples for the same (row, col) slot are summed
// by sparse.New, so an edge added and removed in one batch cancels to
// nothing.
type BatchDelta struct {
	From       uint64 // version before the batch
	To         uint64 // version after the batch
	NodesAdded int
	// Edges holds the signed triples per touched label. A label present
	// with triples that all cancel still marks the label as touched.
	Edges map[string][]sparse.Triple
}

// SummarizeUpdates folds a batch of update records (as delivered to an
// OnUpdate observer: non-empty, contiguous, in commit order) into its
// edge-level delta.
func SummarizeUpdates(updates []Update) BatchDelta {
	d := BatchDelta{Edges: make(map[string][]sparse.Triple)}
	if len(updates) == 0 {
		return d
	}
	d.From = updates[0].Version - 1
	d.To = updates[len(updates)-1].Version
	for _, u := range updates {
		switch u.Op {
		case OpAddNode:
			d.NodesAdded++
		case OpAddEdge:
			d.Edges[u.Edge.Label] = append(d.Edges[u.Edge.Label],
				sparse.Triple{Row: int(u.Edge.From), Col: int(u.Edge.To), Val: 1})
		case OpRemoveEdge:
			d.Edges[u.Edge.Label] = append(d.Edges[u.Edge.Label],
				sparse.Triple{Row: int(u.Edge.From), Col: int(u.Edge.To), Val: -1})
		}
	}
	return d
}

// Labels returns the touched label set.
func (d BatchDelta) Labels() []string {
	ls := make([]string, 0, len(d.Edges))
	for l := range d.Edges {
		ls = append(ls, l)
	}
	return ls
}

// LabelDeltas materializes the per-label signed delta matrices at
// dimension n (the node count after the batch).
func (d BatchDelta) LabelDeltas(n int) map[string]*sparse.Matrix {
	out := make(map[string]*sparse.Matrix, len(d.Edges))
	for l, ts := range d.Edges {
		out[l] = sparse.New(n, ts)
	}
	return out
}
