package store

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"relsim/internal/graph"
)

// TestSnapshotIsolationNoTornReads is the MVCC property test: writers
// commit transactions that each add one node and one edge (so every
// committed version V = 2k has exactly 1+k nodes and k edges), while
// readers pin snapshots and assert the invariant — a torn read (a
// snapshot mixing two versions' state) breaks the arithmetic. Run with
// -race.
func TestSnapshotIsolationNoTornReads(t *testing.T) {
	g := graph.New()
	root := g.AddNode("root", "t")
	s := New(g)

	const (
		writers = 4
		readers = 4
		txPerW  = 100
	)
	var writeWG, readWG sync.WaitGroup
	var stop atomic.Bool
	errs := make(chan string, readers*4+writers)

	report := func(msg string) {
		select {
		case errs <- msg:
		default:
		}
	}

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func() {
			defer writeWG.Done()
			for i := 0; i < txPerW; i++ {
				err := s.Update(func(tx *Tx) error {
					id := tx.AddNode("", "t")
					return tx.AddEdge(root, "e", id)
				})
				if err != nil {
					report(err.Error())
					return
				}
			}
		}()
	}

	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for !stop.Load() {
				pin := s.Pin()
				snap, v := pin.Snapshot(), pin.Version()
				if v%2 != 0 {
					report("pinned version is mid-transaction")
				}
				k := int(v / 2)
				if got := snap.NumNodes(); got != 1+k {
					report("torn read: nodes do not match version")
				}
				if got := snap.NumEdges(); got != k {
					report("torn read: edges do not match version")
				}
				// The snapshot must stay frozen: re-derive the counts
				// from the adjacency after yielding to the writers.
				runtime.Gosched()
				if got := len(snap.Out(root, "e")); got != k {
					report("pinned snapshot changed under the reader")
				}
				pin.Release()
			}
		}()
	}

	writeWG.Wait()
	stop.Store(true)
	readWG.Wait()

	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got, want := s.Version(), uint64(2*writers*txPerW); got != want {
		t.Errorf("final version = %d, want %d", got, want)
	}
	snap, _ := s.Snapshot()
	if snap.NumNodes() != 1+writers*txPerW || snap.NumEdges() != writers*txPerW {
		t.Errorf("final graph = %d nodes %d edges", snap.NumNodes(), snap.NumEdges())
	}
	if ps := s.PinStats(); ps.Readers != 0 {
		t.Errorf("pins leaked: %+v", ps)
	}
}

// TestUpdateRollsBackAtomically: a failing transaction publishes
// nothing, even when earlier mutations in the batch succeeded.
func TestUpdateRollsBackAtomically(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", "t")
	b := g.AddNode("b", "t")
	g.AddEdge(a, "x", b)
	s := New(g)

	var seen int
	s.OnUpdate(func(us []Update) { seen += len(us) })

	err := s.Update(func(tx *Tx) error {
		tx.AddNode("c", "t")
		if err := tx.AddEdge(a, "y", b); err != nil {
			return err
		}
		return tx.RemoveEdge(a, "nope", b) // fails
	})
	if err == nil {
		t.Fatal("want error from failing batch")
	}
	if s.Version() != 0 {
		t.Errorf("failed batch bumped version to %d", s.Version())
	}
	snap, _ := s.Snapshot()
	if snap.NumNodes() != 2 || snap.NumEdges() != 1 {
		t.Errorf("failed batch leaked state: %d nodes %d edges", snap.NumNodes(), snap.NumEdges())
	}
	if seen != 0 {
		t.Errorf("observer saw %d updates from a rolled-back batch", seen)
	}
	if len(s.Log(0)) != 0 {
		t.Errorf("rolled-back batch reached the log: %+v", s.Log(0))
	}
}

// TestPinStats tracks pin registration across versions.
func TestPinStats(t *testing.T) {
	s := New(nil)
	s.AddNode("a", "t")
	p0 := s.Pin() // version 1
	s.AddNode("b", "t")
	p1 := s.Pin() // version 2
	s.AddNode("c", "t")

	ps := s.PinStats()
	if ps.Live != 3 || ps.Readers != 2 || ps.Spread != 2 {
		t.Errorf("PinStats = %+v, want live 3, 2 readers, spread 2", ps)
	}
	if s.OldestPinned() != 1 {
		t.Errorf("OldestPinned = %d, want 1", s.OldestPinned())
	}
	p0.Release()
	p0.Release() // idempotent
	if ps := s.PinStats(); ps.Readers != 1 || ps.Spread != 1 {
		t.Errorf("after release: %+v", ps)
	}
	p1.Release()
	if ps := s.PinStats(); ps.Readers != 0 || ps.Spread != 0 {
		t.Errorf("after all releases: %+v", ps)
	}
	if s.OldestPinned() != 3 {
		t.Errorf("OldestPinned with no pins = %d, want live 3", s.OldestPinned())
	}
}

// TestWritersNeverBlockReaders: a reader's snapshot access completes
// while a writer transaction is deliberately parked mid-flight.
func TestWritersNeverBlockReaders(t *testing.T) {
	s := New(nil)
	a := s.AddNode("a", "t")
	b := s.AddNode("b", "t")
	s.AddEdge(a, "x", b)

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Update(func(tx *Tx) error {
			tx.AddNode("c", "t")
			close(entered)
			<-release // writer holds the write lock ... readers must not care
			return nil
		})
	}()
	<-entered

	snap, v := s.Snapshot()
	if v != 3 || snap.NumNodes() != 2 {
		t.Errorf("reader during in-flight write saw version %d with %d nodes", v, snap.NumNodes())
	}
	if got := s.Stats(); got.Edges != 1 {
		t.Errorf("Stats during in-flight write = %+v", got)
	}
	close(release)
	<-done
	if v := s.Version(); v != 4 {
		t.Errorf("version after commit = %d, want 4", v)
	}
}
