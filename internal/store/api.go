package store

import (
	"context"
	"io"

	"relsim/internal/graph"
	"relsim/internal/telemetry"
)

// API is the store surface the server, CLI and facade are written
// against: everything a serving process needs from an MVCC graph store,
// satisfied by both the monolithic *Store and the horizontally
// partitioned *ShardedStore. Code that needs the monolithic snapshot
// type specifically (offline tooling, tests) keeps using *Store
// directly; the serving path sees only views.
type API interface {
	// Read path.
	View() (graph.View, uint64)
	Version() uint64
	Pin() *Pin
	Stats() Stats
	PinStats() PinStats
	OldestPinned() uint64

	// Write path.
	Update(fn func(tx *Tx) error) error
	OnUpdate(fn func([]Update))
	AddNode(name, typ string) graph.NodeID
	AddEdge(u graph.NodeID, label string, v graph.NodeID) error
	RemoveEdge(u graph.NodeID, label string, v graph.NodeID) error

	// Replication feed.
	Log(since uint64) []Update
	LogFeed(since uint64, max int) Feed
	LogFeedContext(ctx context.Context, since uint64, max int) (Feed, error)
	SetLogRetention(n int)
	Reset(g *graph.Graph, version uint64) error

	// Durability.
	Durable() bool
	DurabilityStats() DurabilityStats
	Checkpoint() error
	CheckpointVersion() uint64
	CheckpointReader() (io.ReadCloser, uint64, int64, error)

	// Lifecycle and observability.
	Close() error
	Instrument(reg *telemetry.Registry)
}

var (
	_ API = (*Store)(nil)
	_ API = (*ShardedStore)(nil)
)
