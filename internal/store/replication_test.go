package store

// Replication-feed correctness: the gap-predicate boundaries the
// follower protocol depends on (an off-by-one here makes a replica
// silently skip a committed batch), the WAL-backed fallback for
// followers that out-sleep the in-memory retention, the Reset bootstrap
// primitive, checkpoint streaming, and the Close/Update shutdown race.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relsim/internal/graph"
)

// TestLogFeedGapBoundaries pins the gap predicate at the exact
// boundary: logDropped is the highest dropped version, so since ==
// logDropped is servable (the follower has version logDropped and needs
// logDropped+1, which is retained) while since == logDropped-1 is not
// (it needs version logDropped, which is gone).
func TestLogFeedGapBoundaries(t *testing.T) {
	s := New(seedGraph())
	s.SetLogRetention(4)
	for i := 0; i < 10; i++ {
		if err := s.AddEdge(0, "y", 1); err != nil {
			t.Fatal(err)
		}
	}
	// Retention 4 of 10 commits keeps versions 7..10; dropped through 6.
	const dropped = 6
	cases := []struct {
		since     uint64
		wantGap   bool
		wantFirst uint64 // first delivered version; 0 = none expected
	}{
		{since: dropped - 1, wantGap: true, wantFirst: dropped + 1},
		{since: dropped, wantGap: false, wantFirst: dropped + 1},
		{since: dropped + 1, wantGap: false, wantFirst: dropped + 2},
		{since: 0, wantGap: true, wantFirst: dropped + 1},
		{since: 10, wantGap: false, wantFirst: 0},
	}
	for _, tc := range cases {
		f := s.LogFeed(tc.since, 0)
		if f.Gap != tc.wantGap {
			t.Errorf("since=%d: gap = %v, want %v (%+v)", tc.since, f.Gap, tc.wantGap, f)
		}
		if f.DroppedThrough != dropped {
			t.Errorf("since=%d: dropped_through = %d, want %d", tc.since, f.DroppedThrough, dropped)
		}
		if tc.wantFirst == 0 {
			if len(f.Updates) != 0 {
				t.Errorf("since=%d: got %d updates, want none", tc.since, len(f.Updates))
			}
			continue
		}
		if len(f.Updates) == 0 || f.Updates[0].Version != tc.wantFirst {
			t.Errorf("since=%d: first delivered = %+v, want version %d", tc.since, f.Updates, tc.wantFirst)
		}
		// Contiguity inside the page, and the hard invariant: a page that
		// does NOT signal a gap must start exactly at since+1.
		for i, u := range f.Updates {
			if u.Version != f.Updates[0].Version+uint64(i) {
				t.Fatalf("since=%d: non-contiguous page %+v", tc.since, f.Updates)
			}
		}
		if !f.Gap && f.Updates[0].Version != tc.since+1 {
			t.Errorf("since=%d: gapless page starts at %d", tc.since, f.Updates[0].Version)
		}
	}
}

// TestLogFeedTrimRacingPagingReader hammers commits (which trim the
// bounded log) while a reader pages through the feed, asserting the
// follower-safety invariant under -race: a page either signals a gap or
// starts exactly at since+1 and is contiguous — records are never
// silently skipped.
func TestLogFeedTrimRacingPagingReader(t *testing.T) {
	s := New(seedGraph())
	s.SetLogRetention(8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.AddEdge(0, "y", 1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	since := uint64(0)
	for i := 0; i < 2000; i++ {
		f := s.LogFeed(since, 3)
		if len(f.Updates) > 0 {
			if !f.Gap && f.Updates[0].Version != since+1 {
				t.Fatalf("since=%d: silent skip to %d (gap not signaled)", since, f.Updates[0].Version)
			}
			for j, u := range f.Updates {
				if u.Version != f.Updates[0].Version+uint64(j) {
					t.Fatalf("non-contiguous page at since=%d: %+v", since, f.Updates)
				}
			}
			since = f.Updates[len(f.Updates)-1].Version
		} else if f.Gap {
			// Everything after since aged out before the page was cut;
			// resume from the watermark like a re-bootstrapping follower.
			since = f.DroppedThrough
		}
	}
	close(stop)
	wg.Wait()
}

// TestWALBackedLogFeed: a durable store serves feed pages past the
// in-memory retention from the WAL — no gap — until checkpoint trimming
// retires the needed segments, at which point the gap is hard and
// honestly signaled.
func TestWALBackedLogFeed(t *testing.T) {
	dir := t.TempDir()
	// One record per segment (tiny bound) so TrimThrough can retire
	// history at fine granularity; no automatic checkpoints.
	s, err := Open(dir, WithSeed(seedGraph()), WithSegmentBytes(1), WithCheckpointEvery(0), WithLogRetention(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 12; i++ {
		if err := s.AddEdge(0, "y", 1); err != nil {
			t.Fatal(err)
		}
	}
	// Memory holds 11..12 (dropped through 10), but the WAL holds
	// everything: since=0 must page contiguously with no gap.
	f := s.LogFeed(0, 0)
	if f.Gap || len(f.Updates) != 12 || f.Updates[0].Version != 1 || f.Version != 12 {
		t.Fatalf("WAL-backed full feed = gap=%v n=%d %+v", f.Gap, len(f.Updates), f)
	}
	for i, u := range f.Updates {
		if u.Version != uint64(i+1) {
			t.Fatalf("non-contiguous WAL feed: %+v", f.Updates)
		}
	}
	// Paging through the WAL region honors max and More.
	f = s.LogFeed(3, 4)
	if f.Gap || !f.More || len(f.Updates) != 4 || f.Updates[0].Version != 4 {
		t.Fatalf("WAL-backed page = %+v", f)
	}
	// A checkpoint at the live version trims the segments below it: the
	// soft gap becomes hard, and must be signaled, not papered over.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	f = s.LogFeed(0, 0)
	if !f.Gap {
		t.Fatalf("post-trim feed claims contiguity: %+v", f)
	}
	// The boundary contract survives the modality switch: asking from
	// the in-memory watermark still works gaplessly.
	f = s.LogFeed(10, 0)
	if f.Gap || len(f.Updates) != 2 || f.Updates[0].Version != 11 {
		t.Fatalf("memory tail after trim = %+v", f)
	}

	// New commits land in a fresh WAL segment: the WAL-backed path keeps
	// working after a trim for ranges it still covers.
	for i := 0; i < 4; i++ {
		if err := s.AddEdge(0, "y", 1); err != nil {
			t.Fatal(err)
		}
	}
	f = s.LogFeed(12, 0)
	if f.Gap || len(f.Updates) != 4 || f.Updates[0].Version != 13 {
		t.Fatalf("post-trim WAL feed = %+v", f)
	}
}

// TestLogFeedContextHonorsDeadline: an expired context fails the page
// with the context's error instead of scanning the WAL.
func TestLogFeedContextHonorsDeadline(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSeed(seedGraph()), WithLogRetention(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		if err := s.AddEdge(0, "y", 1); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.LogFeedContext(ctx, 0, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired context: err = %v", err)
	}
	if f, err := s.LogFeedContext(context.Background(), 0, 0); err != nil || f.Gap || len(f.Updates) != 6 {
		t.Fatalf("live context: %v %+v", err, f)
	}
}

// TestResetBootstrap exercises the follower-bootstrap primitive: state
// is replaced wholesale at a forward version, the feed refuses to serve
// the skipped range contiguously, backwards resets are refused, and a
// durable store recovers the bootstrapped state after a restart.
func TestResetBootstrap(t *testing.T) {
	g2 := graph.New()
	a := g2.AddNode("a", "t")
	b := g2.AddNode("b", "t")
	c := g2.AddNode("c", "t")
	g2.AddEdge(a, "x", b)
	g2.AddEdge(b, "x", c)

	t.Run("in-memory", func(t *testing.T) {
		s := New(seedGraph())
		if err := s.AddEdge(0, "y", 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Reset(g2, 40); err != nil {
			t.Fatal(err)
		}
		snap, v := s.Snapshot()
		if v != 40 || snap.NumNodes() != 3 || snap.NumEdges() != 2 {
			t.Fatalf("post-reset state: v=%d nodes=%d edges=%d", v, snap.NumNodes(), snap.NumEdges())
		}
		// The skipped range must read as a gap, not as emptiness.
		if f := s.LogFeed(10, 0); !f.Gap || f.DroppedThrough != 40 {
			t.Fatalf("feed across reset = %+v", f)
		}
		if f := s.LogFeed(40, 0); f.Gap || len(f.Updates) != 0 {
			t.Fatalf("feed at reset point = %+v", f)
		}
		if err := s.Reset(g2, 39); err == nil {
			t.Fatal("backwards reset accepted")
		}
		// Tailing resumes with exact version continuity.
		if err := s.AddEdge(0, "x", 1); err != nil {
			t.Fatal(err)
		}
		if f := s.LogFeed(40, 0); f.Gap || len(f.Updates) != 1 || f.Updates[0].Version != 41 {
			t.Fatalf("post-reset tail = %+v", f)
		}
	})

	t.Run("durable", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(dir, WithSeed(seedGraph()))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := s.AddEdge(0, "y", 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Reset(g2, 40); err != nil {
			t.Fatal(err)
		}
		if err := s.AddEdge(0, "x", 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// Recovery resumes from the bootstrap checkpoint + the tail
		// committed after it, not the pre-reset history.
		r, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		snap, v := r.Snapshot()
		if v != 41 || snap.NumNodes() != 3 || snap.NumEdges() != 3 {
			t.Fatalf("recovered post-reset state: v=%d nodes=%d edges=%d", v, snap.NumNodes(), snap.NumEdges())
		}
	})
}

// TestCheckpointReader covers both modalities of the bootstrap
// transfer: an in-memory store serializes its live snapshot, a durable
// store streams its newest on-disk checkpoint (whose version equals the
// WAL trim floor, keeping checkpoint+tail contiguous).
func TestCheckpointReader(t *testing.T) {
	t.Run("in-memory", func(t *testing.T) {
		s := New(seedGraph())
		if err := s.AddEdge(0, "y", 1); err != nil {
			t.Fatal(err)
		}
		rc, version, size, err := s.CheckpointReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		var buf bytes.Buffer
		if _, err := io.Copy(&buf, rc); err != nil {
			t.Fatal(err)
		}
		if version != 1 || size != int64(buf.Len()) {
			t.Fatalf("version=%d size=%d buffered=%d", version, size, buf.Len())
		}
		g, err := graph.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumNodes() != 2 || g.NumEdges() != 2 {
			t.Fatalf("streamed graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
		}
	})

	t.Run("durable", func(t *testing.T) {
		dir := t.TempDir()
		s, err := Open(dir, WithSeed(seedGraph()), WithCheckpointEvery(0))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < 3; i++ {
			if err := s.AddEdge(0, "y", 1); err != nil {
				t.Fatal(err)
			}
		}
		// Newest on-disk checkpoint is still the boot one at version 0.
		rc, version, _, err := s.CheckpointReader()
		if err != nil {
			t.Fatal(err)
		}
		rc.Close()
		if version != 0 {
			t.Fatalf("boot checkpoint version = %d", version)
		}
		// After a manual checkpoint the stream serves the live version.
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		rc, version, _, err = s.CheckpointReader()
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		if version != 3 {
			t.Fatalf("post-checkpoint version = %d", version)
		}
		g, err := graph.Read(rc)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() != 4 {
			t.Fatalf("streamed graph edges = %d, want 4", g.NumEdges())
		}
	})
}

// TestCloseRacesMutations is the shutdown-race property: Update and
// Close may interleave freely; every Update either commits fully before
// the close or fails with ErrClosed — never a torn append, never a
// panic — and the recovered state matches exactly the commits that
// reported success.
func TestCloseRacesMutations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSeed(seedGraph()))
	if err != nil {
		t.Fatal(err)
	}
	var committed atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				err := s.AddEdge(0, "y", 1)
				switch {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, ErrClosed):
					return
				default:
					t.Errorf("unexpected mutation error during close race: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := s.AddEdge(0, "y", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close mutation error = %v, want ErrClosed", err)
	}
	// Checkpoints are writes too: a post-close /checkpoint?fresh=1 must
	// not create files or trim segments in a directory being torn down.
	if err := s.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close checkpoint error = %v, want ErrClosed", err)
	}
	if got := s.Version(); got != committed.Load() {
		t.Fatalf("version %d != %d successful commits", got, committed.Load())
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Version(); got != committed.Load() {
		t.Fatalf("recovered version %d != %d successful commits", got, committed.Load())
	}
}
