package store

import (
	"testing"

	"relsim/internal/graph"
	"relsim/internal/sparse"
)

// TestSummarizeUpdates drives real commits through a Store and checks
// the observer-side summary matches what was committed, including the
// signed cancellation of an edge added and removed across batches.
func TestSummarizeUpdates(t *testing.T) {
	st := New(nil)
	var got []BatchDelta
	st.OnUpdate(func(updates []Update) {
		got = append(got, SummarizeUpdates(updates))
	})

	var a, b graph.NodeID
	if err := st.Update(func(tx *Tx) error {
		a = tx.AddNode("a", "")
		b = tx.AddNode("b", "")
		if err := tx.AddEdge(a, "knows", b); err != nil {
			return err
		}
		return tx.AddEdge(a, "knows", b)
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Update(func(tx *Tx) error {
		return tx.RemoveEdge(a, "knows", b)
	}); err != nil {
		t.Fatal(err)
	}

	if len(got) != 2 {
		t.Fatalf("observed %d batches, want 2", len(got))
	}

	d0 := got[0]
	if d0.From != 0 || d0.To != 4 || d0.NodesAdded != 2 {
		t.Fatalf("batch 0 = %+v, want From=0 To=4 NodesAdded=2", d0)
	}
	snap, _ := st.Snapshot()
	n := snap.NumNodes()
	m := d0.LabelDeltas(n)["knows"]
	if m == nil || m.At(int(a), int(b)) != 2 {
		t.Fatalf("batch 0 knows delta at (a,b) = %v, want 2", m)
	}

	d1 := got[1]
	if d1.From != 4 || d1.To != 5 || d1.NodesAdded != 0 {
		t.Fatalf("batch 1 = %+v, want From=4 To=5", d1)
	}
	if m := d1.LabelDeltas(n)["knows"]; m == nil || m.At(int(a), int(b)) != -1 {
		t.Fatalf("batch 1 knows delta = %v, want -1 at (a,b)", m)
	}
	if ls := d1.Labels(); len(ls) != 1 || ls[0] != "knows" {
		t.Fatalf("batch 1 labels = %v", ls)
	}
}

// TestSummarizeCancellation: an edge added and removed in one batch
// cancels to an empty delta matrix but still marks the label touched.
func TestSummarizeCancellation(t *testing.T) {
	d := SummarizeUpdates([]Update{
		{Version: 3, Op: OpAddEdge, Edge: graph.Edge{From: 0, Label: "x", To: 1}},
		{Version: 4, Op: OpRemoveEdge, Edge: graph.Edge{From: 0, Label: "x", To: 1}},
	})
	if d.From != 2 || d.To != 4 {
		t.Fatalf("range = [%d,%d], want [2,4]", d.From, d.To)
	}
	m := d.LabelDeltas(2)["x"]
	if m.NNZ() != 0 {
		t.Fatalf("cancelled delta has %d explicit entries, want 0", m.NNZ())
	}
	if !m.Equal(sparse.Zero(2)) {
		t.Fatal("cancelled delta not the canonical zero matrix")
	}
	if ls := d.Labels(); len(ls) != 1 {
		t.Fatalf("labels = %v, want the touched label even when cancelled", ls)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	d := SummarizeUpdates(nil)
	if len(d.Edges) != 0 || d.NodesAdded != 0 {
		t.Fatalf("empty summary = %+v", d)
	}
}
