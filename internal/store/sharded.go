package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"relsim/internal/graph"
	"relsim/internal/sparse"
	"relsim/internal/telemetry"
)

// ShardedStore is the horizontal-sharding coordinator: K independent
// MVCC stores — each with its own WAL, checkpoints and copy-on-write
// snapshot chain — published behind one logical version as a
// graph.ShardedSnapshot.
//
// Sharding is by edge source (see graph.ShardedSnapshot): every shard
// replicates the node table, shard s materializes only the edges whose
// source it owns. Every shard's WAL, however, receives the FULL logical
// update stream, keyed by the logical version counter:
//
//   - the version counter stays global, so (version, pattern) cache
//     keys and the replication protocol are untouched;
//   - any single shard's WAL can replay the complete history (recovery
//     heals a shard that crashed mid-commit from a sibling's feed);
//   - the /log replication feed is served verbatim from shard 0.
//
// A shard's recovery replays its WAL through a materialization filter
// that skips non-owned edge mutations while still advancing the version
// counter, so the filtered graph and the logical clock stay in step.
//
// Commit protocol (Update): phase 1 appends the batch to every shard's
// WAL; only after ALL appends succeed does phase 2 atomically publish
// the per-shard snapshots and the composite view under the single new
// logical version. A failure before any append succeeded rolls the
// batch back cleanly. A failure AFTER some shard accepted the append
// poisons the store — later writes fail with ErrDurability, reads keep
// serving the last published version — because the shards' durable
// histories have diverged and only a restart (whose recovery heals
// lagging shards forward from an ahead sibling) can reconcile them.
//
// K=1 is the degenerate case used by the differential harness: one
// shard owning everything, one WAL, identical bytes everywhere.
type ShardedStore struct {
	part   sparse.Partition
	shards []*Store

	current atomic.Pointer[shardedVersioned]

	// writeMu serializes writers across all shards (the logical version
	// chain is single-writer, exactly like Store).
	writeMu  sync.Mutex
	onUpdate func([]Update)

	// mu guards the pin registry; the composite publish happens under it
	// so Pin's load-and-register is atomic with respect to commits.
	mu   sync.Mutex
	pins map[uint64]int

	closed   atomic.Bool
	poisoned atomic.Bool

	obs      atomic.Pointer[storeObs]
	shardObs atomic.Pointer[shardObs]
}

// shardedVersioned pairs the composite view with its logical version.
type shardedVersioned struct {
	view    *graph.ShardedSnapshot
	version uint64
}

// ErrPoisoned marks a write refused because an earlier cross-shard
// commit failed after some shards had durably accepted it: the shards'
// WALs have diverged and writes stay fenced until a restart's recovery
// heals them. Wrapped together with ErrDurability.
var ErrPoisoned = errors.New("cross-shard commit diverged; restart to heal")

// shardingManifestName is the partition manifest persisted in a sharded
// data directory. Ownership must be stable across restarts (a range
// partition's chunk depends on the node count at creation; reshuffling
// owners would break filtered WAL replay), so the manifest is written
// once at creation and every later open validates against it.
const shardingManifestName = "sharding.json"

type shardingManifest struct {
	K     int    `json:"shards"`
	Fn    string `json:"shard_fn"`
	Chunk int    `json:"range_chunk,omitempty"`
}

// NewSharded wraps g in an in-memory sharded store at version 0,
// scattered over k shards by the named shard function ("hash" or
// "range"). Invalid parameters are rejected, never panicked on.
func NewSharded(g *graph.Graph, k int, fn string) (*ShardedStore, error) {
	if g == nil {
		g = graph.New()
	}
	part, err := sparse.NewPartition(k, fn, g.NumNodes())
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	split := graph.SplitGraph(g, part)
	shards := make([]*Store, part.K())
	for i, sg := range split {
		shards[i] = New(sg)
	}
	return assembleSharded(part, shards, 0)
}

// OpenSharded opens (creating if needed) a durable sharded store: a
// parent directory holding the partition manifest plus one sub-store
// per shard (shard-0000, shard-0001, ...), each a full durable Store
// directory with its own WAL and checkpoints. On a fresh directory the
// seed graph is scattered and the manifest written; on reopen the
// manifest is validated against the requested k/fn (a mismatch is a
// configuration error — ownership is pinned at creation), each shard
// recovers independently, and any shard that crashed mid-commit behind
// its siblings is healed forward from an ahead shard's full WAL stream.
func OpenSharded(dir string, k int, fn string, opts ...OpenOption) (*ShardedStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	seed := cfg.seed
	if seed == nil {
		seed = graph.New()
	}
	part, err := loadOrCreateManifest(dir, k, fn, seed.NumNodes())
	if err != nil {
		return nil, err
	}
	split := graph.SplitGraph(seed, part)
	shards := make([]*Store, part.K())
	for i := range shards {
		shardOpts := append(append([]OpenOption(nil), opts...),
			WithSeed(split[i]),
			withReplayFilter(shardReplayFilter(part, i)),
		)
		sh, err := Open(filepath.Join(dir, fmt.Sprintf("shard-%04d", i)), shardOpts...)
		if err != nil {
			for _, prev := range shards[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("store: shard %d: %w", i, err)
		}
		shards[i] = sh
	}
	version, err := healShards(part, shards)
	if err != nil {
		for _, sh := range shards {
			if sh != nil {
				sh.Close()
			}
		}
		return nil, err
	}
	return assembleSharded(part, shards, version)
}

// shardReplayFilter materializes only shard-owned mutations during WAL
// replay: node additions apply everywhere (the node table is
// replicated); an edge mutation applies only on its source's owner.
func shardReplayFilter(part sparse.Partition, shard int) func(Update) bool {
	return func(u Update) bool {
		if u.Op == OpAddNode {
			return true
		}
		return part.Owner(int(u.Edge.From)) == shard
	}
}

// loadOrCreateManifest reads and validates the partition manifest, or
// creates it on a fresh directory (chunk fixed from the seed's node
// count, exactly once).
func loadOrCreateManifest(dir string, k int, fn string, seedNodes int) (sparse.Partition, error) {
	path := filepath.Join(dir, shardingManifestName)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		var m shardingManifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return sparse.Partition{}, fmt.Errorf("store: parse %s: %w", path, err)
		}
		if m.K != k || m.Fn != fn {
			return sparse.Partition{}, fmt.Errorf(
				"store: %s created with %d %q shards; reopening with %d %q would reshuffle ownership — use the original flags or a fresh directory",
				dir, m.K, m.Fn, k, fn)
		}
		part, err := sparse.RestorePartition(m.K, m.Fn, m.Chunk)
		if err != nil {
			return sparse.Partition{}, fmt.Errorf("store: %s: %w", path, err)
		}
		return part, nil
	case os.IsNotExist(err):
		part, perr := sparse.NewPartition(k, fn, seedNodes)
		if perr != nil {
			return sparse.Partition{}, fmt.Errorf("store: %w", perr)
		}
		buf, _ := json.MarshalIndent(shardingManifest{K: part.K(), Fn: part.Fn(), Chunk: part.Chunk()}, "", "  ")
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
			return sparse.Partition{}, fmt.Errorf("store: write %s: %w", path, err)
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return sparse.Partition{}, fmt.Errorf("store: write %s: %w", path, err)
		}
		return part, nil
	default:
		return sparse.Partition{}, fmt.Errorf("store: read %s: %w", path, err)
	}
}

// healShards reconciles shards that recovered at different versions — a
// crash between phase-1 WAL appends leaves the shards appended earlier
// ahead of the rest. Every shard's WAL carries the full logical stream,
// so a lagging shard fetches the missed updates from the furthest-ahead
// sibling's feed, appends them to its own WAL (keeping it complete) and
// materializes the owned subset. Returns the common recovered version.
func healShards(part sparse.Partition, shards []*Store) (uint64, error) {
	ahead, target := 0, shards[0].Version()
	for i, sh := range shards[1:] {
		if v := sh.Version(); v > target {
			ahead, target = i+1, v
		}
	}
	for i, sh := range shards {
		v := sh.Version()
		if v == target {
			continue
		}
		feed := shards[ahead].LogFeed(v, 0)
		if feed.Gap {
			return 0, fmt.Errorf("store: shard %d recovered at version %d, %d needed to heal to %d, but the feed has a gap (dropped through %d)",
				i, v, target-v, target, feed.DroppedThrough)
		}
		var missed []Update
		for _, u := range feed.Updates {
			if u.Version > target {
				break
			}
			missed = append(missed, u)
		}
		if uint64(len(missed)) != target-v {
			return 0, fmt.Errorf("store: shard %d: feed served %d of %d updates needed to heal to %d",
				i, len(missed), target-v, target)
		}
		filter := shardReplayFilter(part, i)
		b := graph.NewBuilder(sh.current.Load().snap)
		for _, u := range missed {
			if !filter(u) {
				continue
			}
			if err := applyUpdate(b, u); err != nil {
				return 0, fmt.Errorf("store: heal shard %d: %w", i, err)
			}
		}
		if sh.dur != nil {
			if err := sh.dur.appendBatch(target, missed); err != nil {
				return 0, fmt.Errorf("store: heal shard %d: %w: %w", i, ErrDurability, err)
			}
		}
		next := &versioned{snap: b.Build(), version: target}
		sh.mu.Lock()
		sh.current.Store(next)
		sh.log = append(sh.log, missed...)
		sh.trimLogLocked()
		sh.mu.Unlock()
	}
	return target, nil
}

// assembleSharded builds the composite published view over freshly
// opened shards, verifying they agree on the logical version.
func assembleSharded(part sparse.Partition, shards []*Store, version uint64) (*ShardedStore, error) {
	snaps := make([]*graph.Snapshot, len(shards))
	for i, sh := range shards {
		snap, v := sh.Snapshot()
		if v != version {
			return nil, fmt.Errorf("store: shard %d at version %d, want %d", i, v, version)
		}
		snaps[i] = snap
	}
	ss := &ShardedStore{part: part, shards: shards, pins: make(map[uint64]int)}
	ss.current.Store(&shardedVersioned{view: graph.NewShardedSnapshot(part, snaps), version: version})
	return ss, nil
}

// Partition returns the store's node-space partition.
func (ss *ShardedStore) Partition() sparse.Partition { return ss.part }

// NumShards returns K.
func (ss *ShardedStore) NumShards() int { return len(ss.shards) }

// ShardStore returns shard i's underlying store for inspection (stats,
// tests). Mutations MUST go through the coordinator's Update; writing a
// shard directly would fork the logical version chain.
func (ss *ShardedStore) ShardStore(i int) *Store { return ss.shards[i] }

// View returns the current composite view and its logical version with
// a single atomic load.
func (ss *ShardedStore) View() (graph.View, uint64) {
	cur := ss.current.Load()
	return cur.view, cur.version
}

// Sharded returns the current composite view with its concrete type
// (per-shard access for the evaluator's scatter path).
func (ss *ShardedStore) Sharded() (*graph.ShardedSnapshot, uint64) {
	cur := ss.current.Load()
	return cur.view, cur.version
}

// Version returns the current logical version.
func (ss *ShardedStore) Version() uint64 { return ss.current.Load().version }

// Pin pins the current logical version; see Store.Pin.
func (ss *ShardedStore) Pin() *Pin {
	ss.mu.Lock()
	cur := ss.current.Load()
	ss.pins[cur.version]++
	ss.mu.Unlock()
	return &Pin{owner: ss, view: cur.view, version: cur.version}
}

func (ss *ShardedStore) unpin(version uint64) {
	ss.mu.Lock()
	if n := ss.pins[version]; n <= 1 {
		delete(ss.pins, version)
	} else {
		ss.pins[version] = n - 1
	}
	ss.mu.Unlock()
}

// PinStats returns a point-in-time pin summary; see Store.PinStats.
func (ss *ShardedStore) PinStats() PinStats {
	live := ss.Version()
	ss.mu.Lock()
	ps := PinStats{Live: live}
	for v, n := range ss.pins {
		ps.Pinned = append(ps.Pinned, v)
		ps.Readers += n
	}
	ss.mu.Unlock()
	sortPinned(&ps)
	return ps
}

// OldestPinned returns the oldest pinned logical version, or the live
// version when nothing is pinned.
func (ss *ShardedStore) OldestPinned() uint64 {
	live := ss.Version()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	oldest := live
	for v := range ss.pins {
		if v < oldest {
			oldest = v
		}
	}
	return oldest
}

// OnUpdate registers the committed-batch observer; see Store.OnUpdate.
func (ss *ShardedStore) OnUpdate(fn func([]Update)) {
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	ss.onUpdate = fn
}

// Stats returns a consistent summary of the composite view.
func (ss *ShardedStore) Stats() Stats {
	cur := ss.current.Load()
	return Stats{Version: cur.version, Nodes: cur.view.NumNodes(), Edges: cur.view.NumEdges(), Labels: cur.view.Labels()}
}

// ShardStat is one shard's slice of the composite in /stats.
type ShardStat struct {
	Shard      int    `json:"shard"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Version    uint64 `json:"version"`
	WALRecords uint64 `json:"wal_records,omitempty"`
	Checkpoint uint64 `json:"last_checkpoint_version,omitempty"`
}

// ShardStats reports each shard's node/edge counts and durability
// high-water marks — the /stats "shards" section and the source for the
// relsim_shard_* gauges.
func (ss *ShardedStore) ShardStats() []ShardStat {
	out := make([]ShardStat, len(ss.shards))
	for i, sh := range ss.shards {
		snap, v := sh.Snapshot()
		st := ShardStat{Shard: i, Nodes: snap.NumNodes(), Edges: snap.NumEdges(), Version: v}
		if d := sh.dur; d != nil {
			st.WALRecords = d.wal.Stats().Appended
			st.Checkpoint = d.lastCheckpoint.Load()
		}
		out[i] = st
	}
	return out
}

// shardedBuilder fans a transaction out across per-shard builders: node
// additions replicate to every shard (keeping node tables identical and
// ids global), edge mutations route to the source's owner. Lookups are
// answered by shard 0, whose node table is authoritative for all.
type shardedBuilder struct {
	part     sparse.Partition
	builders []*graph.Builder
}

var _ txBackend = (*shardedBuilder)(nil)

func (sb *shardedBuilder) Has(id graph.NodeID) bool { return sb.builders[0].Has(id) }
func (sb *shardedBuilder) NodeByName(name string) (graph.Node, bool) {
	return sb.builders[0].NodeByName(name)
}
func (sb *shardedBuilder) Base() *graph.Snapshot { return sb.builders[0].Base() }

func (sb *shardedBuilder) AddNode(name, typ string) graph.NodeID {
	id := sb.builders[0].AddNode(name, typ)
	for _, b := range sb.builders[1:] {
		b.AddNode(name, typ)
	}
	return id
}

func (sb *shardedBuilder) AddEdge(u graph.NodeID, label string, v graph.NodeID) error {
	return sb.builders[sb.part.Owner(int(u))].AddEdge(u, label, v)
}

func (sb *shardedBuilder) RemoveEdge(u graph.NodeID, label string, v graph.NodeID) bool {
	return sb.builders[sb.part.Owner(int(u))].RemoveEdge(u, label, v)
}

// Update runs fn as a write transaction against the composite view and
// commits it under ONE new logical version across all shards. See the
// type comment for the two-phase protocol and its failure modes.
func (ss *ShardedStore) Update(fn func(tx *Tx) error) error {
	start := time.Now()
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	if ss.closed.Load() {
		return fmt.Errorf("store: %w", ErrClosed)
	}
	if ss.poisoned.Load() {
		return fmt.Errorf("store: %w: %w", ErrDurability, ErrPoisoned)
	}
	cur := ss.current.Load()
	sb := &shardedBuilder{part: ss.part, builders: make([]*graph.Builder, len(ss.shards))}
	for i, sh := range ss.shards {
		sb.builders[i] = graph.NewBuilder(sh.current.Load().snap)
	}
	tx := &Tx{b: sb, base: cur.version}
	if err := fn(tx); err != nil {
		return err
	}
	if len(tx.updates) == 0 {
		return nil
	}
	next := cur.version + uint64(len(tx.updates))

	// Phase 1: the full batch becomes durable on EVERY shard before any
	// state is published. First append failing = clean rollback (no shard
	// has the batch). A later append failing = durable divergence: poison
	// the store so no further version is ever built on the fork.
	appended := 0
	for i, sh := range ss.shards {
		if sh.dur == nil {
			continue
		}
		if err := sh.dur.appendBatch(next, tx.updates); err != nil {
			if appended > 0 {
				ss.poisoned.Store(true)
				return fmt.Errorf("store: shard %d wal append after %d shards accepted: %w: %w",
					i, appended, ErrDurability, ErrPoisoned)
			}
			return fmt.Errorf("store: shard %d wal append (batch rolled back): %w: %w", i, ErrDurability, err)
		}
		appended++
	}

	// Phase 2: publish. Per-shard snapshots first (each under its own
	// mu, feeding its log so per-shard feeds stay contiguous), then the
	// composite pointer under ss.mu for pin atomicity.
	snaps := make([]*graph.Snapshot, len(ss.shards))
	versions := make([]*versioned, len(ss.shards))
	for i := range ss.shards {
		snaps[i] = sb.builders[i].Build()
		versions[i] = &versioned{snap: snaps[i], version: next}
	}
	nextComposite := &shardedVersioned{view: graph.NewShardedSnapshot(ss.part, snaps), version: next}
	for i, sh := range ss.shards {
		sh.mu.Lock()
		sh.current.Store(versions[i])
		sh.log = append(sh.log, tx.updates...)
		sh.trimLogLocked()
		sh.mu.Unlock()
	}
	ss.mu.Lock()
	ss.current.Store(nextComposite)
	ss.mu.Unlock()
	if ss.onUpdate != nil {
		ss.onUpdate(tx.updates)
	}
	ss.observeCommit(start)
	for i, sh := range ss.shards {
		if sh.dur != nil {
			sh.maybeCheckpointLocked(versions[i])
		}
	}
	return nil
}

func (ss *ShardedStore) observeCommit(start time.Time) {
	if obs := ss.obs.Load(); obs != nil {
		obs.commits.Inc()
		obs.commitSeconds.Observe(time.Since(start).Seconds())
	}
	if so := ss.shardObs.Load(); so != nil {
		so.refresh(ss)
	}
}

// Log returns retained updates with version > since (shard 0's log —
// every shard carries the full logical stream).
func (ss *ShardedStore) Log(since uint64) []Update { return ss.shards[0].Log(since) }

// LogFeed assembles one replication-feed page; see Store.LogFeed. The
// page is served from shard 0, whose in-memory log and WAL both carry
// the complete logical stream, so followers replicate from a sharded
// leader exactly as from a monolithic one.
func (ss *ShardedStore) LogFeed(since uint64, max int) Feed { return ss.shards[0].LogFeed(since, max) }

// LogFeedContext is LogFeed honoring a deadline; see Store.LogFeedContext.
func (ss *ShardedStore) LogFeedContext(ctx context.Context, since uint64, max int) (Feed, error) {
	return ss.shards[0].LogFeedContext(ctx, since, max)
}

// SetLogRetention bounds every shard's in-memory update log.
func (ss *ShardedStore) SetLogRetention(n int) {
	for _, sh := range ss.shards {
		sh.SetLogRetention(n)
	}
}

// Durable reports whether the shards persist their updates.
func (ss *ShardedStore) Durable() bool { return ss.shards[0].Durable() }

// DurabilityStats aggregates the shards' durability counters: recovery
// and checkpoint marks from the slowest shard (the store is only as
// recovered as its laggard), WAL occupancy summed.
func (ss *ShardedStore) DurabilityStats() DurabilityStats {
	if !ss.Durable() {
		return DurabilityStats{}
	}
	agg := ss.shards[0].DurabilityStats()
	agg.Dir = filepath.Dir(agg.Dir)
	for _, sh := range ss.shards[1:] {
		st := sh.DurabilityStats()
		agg.WAL.Appended += st.WAL.Appended
		agg.WAL.Fsyncs += st.WAL.Fsyncs
		agg.WAL.Segments += st.WAL.Segments
		agg.WAL.ActiveSegmentBytes += st.WAL.ActiveSegmentBytes
		agg.Checkpoints += st.Checkpoints
		agg.CheckpointErrors += st.CheckpointErrors
		if st.LastCheckpointVersion < agg.LastCheckpointVersion {
			agg.LastCheckpointVersion = st.LastCheckpointVersion
		}
		if st.Recovery.RecoveredVersion < agg.Recovery.RecoveredVersion {
			agg.Recovery = st.Recovery
		}
	}
	return agg
}

// Checkpoint forces a checkpoint of every shard.
func (ss *ShardedStore) Checkpoint() error {
	for i, sh := range ss.shards {
		if err := sh.Checkpoint(); err != nil {
			return fmt.Errorf("store: shard %d: %w", i, err)
		}
	}
	return nil
}

// CheckpointVersion returns the version a checkpoint transfer would
// carry: the live version, since the composite stream is serialized
// from the published view (shard checkpoint files hold filtered graphs
// and are a per-shard recovery concern, not a transfer format).
func (ss *ShardedStore) CheckpointVersion() uint64 { return ss.Version() }

// CheckpointReader streams the FULL composite graph at the current
// logical version — a follower bootstrapping from a sharded leader
// receives the same line-oriented serialization a monolithic leader
// would send (ShardedSnapshot.EachEdge iterates in the monolithic
// order), then tails the (full-stream) feed.
func (ss *ShardedStore) CheckpointReader() (io.ReadCloser, uint64, int64, error) {
	cur := ss.current.Load()
	var buf bytes.Buffer
	if err := graph.WriteView(&buf, cur.view); err != nil {
		return nil, 0, 0, fmt.Errorf("store: checkpoint stream: %w", err)
	}
	return io.NopCloser(bytes.NewReader(buf.Bytes())), cur.version, int64(buf.Len()), nil
}

// Reset replaces the composite state with g at version — the
// follower-bootstrap primitive, scattered across the shards. Each shard
// Resets onto its owned slice (checkpointing it when durable); the
// composite publishes only after every shard succeeded. A partial
// failure poisons the store: some shards' durable state has moved.
func (ss *ShardedStore) Reset(g *graph.Graph, version uint64) error {
	if g == nil {
		g = graph.New()
	}
	ss.writeMu.Lock()
	defer ss.writeMu.Unlock()
	if ss.closed.Load() {
		return fmt.Errorf("store: %w", ErrClosed)
	}
	if ss.poisoned.Load() {
		return fmt.Errorf("store: %w: %w", ErrDurability, ErrPoisoned)
	}
	cur := ss.current.Load()
	if version < cur.version {
		return fmt.Errorf("store: reset to version %d would move backwards (live %d)", version, cur.version)
	}
	split := graph.SplitGraph(g, ss.part)
	for i, sh := range ss.shards {
		if err := sh.Reset(split[i], version); err != nil {
			if i > 0 {
				ss.poisoned.Store(true)
			}
			return fmt.Errorf("store: reset shard %d: %w", i, err)
		}
	}
	snaps := make([]*graph.Snapshot, len(ss.shards))
	for i, sh := range ss.shards {
		snaps[i], _ = sh.Snapshot()
	}
	ss.mu.Lock()
	ss.current.Store(&shardedVersioned{view: graph.NewShardedSnapshot(ss.part, snaps), version: version})
	ss.mu.Unlock()
	return nil
}

// Close drains in-flight commits, marks the coordinator closed and
// closes every shard. Idempotent.
func (ss *ShardedStore) Close() error {
	ss.writeMu.Lock()
	already := ss.closed.Swap(true)
	ss.writeMu.Unlock()
	if already {
		return nil
	}
	var first error
	for _, sh := range ss.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AddNode adds a single node outside a batch.
func (ss *ShardedStore) AddNode(name, typ string) graph.NodeID {
	var id graph.NodeID
	ss.Update(func(tx *Tx) error {
		id = tx.AddNode(name, typ)
		return nil
	})
	return id
}

// AddEdge adds a single edge outside a batch.
func (ss *ShardedStore) AddEdge(u graph.NodeID, label string, v graph.NodeID) error {
	return ss.Update(func(tx *Tx) error { return tx.AddEdge(u, label, v) })
}

// RemoveEdge removes a single edge outside a batch.
func (ss *ShardedStore) RemoveEdge(u graph.NodeID, label string, v graph.NodeID) error {
	return ss.Update(func(tx *Tx) error { return tx.RemoveEdge(u, label, v) })
}

// shardObs holds the labeled per-shard gauges Instrument refreshes on
// every commit (and once at registration): scrape-time callbacks cannot
// carry labels, so these are event-driven.
type shardObs struct {
	nodes      *telemetry.Vec
	edges      *telemetry.Vec
	walRecords *telemetry.Vec
}

func (so *shardObs) refresh(ss *ShardedStore) {
	for _, st := range ss.ShardStats() {
		label := fmt.Sprintf("%d", st.Shard)
		so.nodes.With(label).Set(float64(st.Nodes))
		so.edges.With(label).Set(float64(st.Edges))
		so.walRecords.With(label).Set(float64(st.WALRecords))
	}
}

// Instrument registers the coordinator's metrics: the relsim_store_*
// family driven by logical commits (names and meanings identical to the
// monolithic store, so dashboards survive the refactor), WAL metrics
// aggregated across every shard's durability layer, and the
// relsim_shard_* per-shard catalog. Call once, before serving.
func (ss *ShardedStore) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	obs := &storeObs{
		commitSeconds: reg.Histogram("relsim_store_commit_seconds",
			"Latency of committed write transactions (WAL append + publish).",
			commitBuckets).With(),
		commits: reg.Counter("relsim_store_commits_total",
			"Committed write transactions.").With(),
		checkpointSeconds: reg.Histogram("relsim_store_checkpoint_seconds",
			"Duration of completed graph checkpoints.", nil).With(),
	}
	ss.obs.Store(obs)
	// Shard checkpoints run inside the per-shard stores; sharing the
	// composite's observer makes their durations observable here.
	for _, sh := range ss.shards {
		sh.obs.Store(obs)
	}

	reg.GaugeFunc("relsim_store_version",
		"Current published graph version.",
		func() float64 { return float64(ss.Version()) })
	reg.GaugeFunc("relsim_store_pinned_readers",
		"Readers currently pinning a snapshot.",
		func() float64 { return float64(ss.PinStats().Readers) })
	reg.GaugeFunc("relsim_store_pin_spread_versions",
		"Live version minus the oldest pinned version.",
		func() float64 { return float64(ss.PinStats().Spread) })
	reg.GaugeFunc("relsim_store_log_records",
		"Records retained in the in-memory replication log.",
		func() float64 {
			sh := ss.shards[0]
			sh.mu.Lock()
			defer sh.mu.Unlock()
			return float64(len(sh.log))
		})

	reg.GaugeFunc("relsim_shard_count",
		"Number of shards the node space is partitioned into.",
		func() float64 { return float64(len(ss.shards)) })
	so := &shardObs{
		nodes: reg.Gauge("relsim_shard_nodes",
			"Nodes in the shard's replicated node table.", "shard"),
		edges: reg.Gauge("relsim_shard_edges",
			"Edges owned by the shard (partitioned by source).", "shard"),
		walRecords: reg.Gauge("relsim_shard_wal_records",
			"Records appended to the shard's WAL this process.", "shard"),
	}
	ss.shardObs.Store(so)
	so.refresh(ss)

	if !ss.Durable() {
		return
	}
	reg.CounterFunc("relsim_store_checkpoints_total",
		"Checkpoints written this process (all shards).",
		func() float64 {
			var n uint64
			for _, sh := range ss.shards {
				n += sh.dur.checkpoints.Load()
			}
			return float64(n)
		})
	reg.CounterFunc("relsim_store_checkpoint_errors_total",
		"Checkpoint attempts that failed (all shards).",
		func() float64 {
			var n uint64
			for _, sh := range ss.shards {
				n += sh.dur.checkpointErrs.Load()
			}
			return float64(n)
		})
	reg.GaugeFunc("relsim_store_last_checkpoint_version",
		"Version of the oldest shard checkpoint on disk (the recovery floor).",
		func() float64 {
			min := ss.shards[0].dur.lastCheckpoint.Load()
			for _, sh := range ss.shards[1:] {
				if v := sh.dur.lastCheckpoint.Load(); v < min {
					min = v
				}
			}
			return float64(min)
		})

	fsync := reg.Histogram("relsim_wal_fsync_seconds",
		"Latency of WAL fsyncs.", commitBuckets).With()
	appended := reg.Counter("relsim_wal_appended_bytes_total",
		"Bytes appended to the WAL (headers included).").With()
	for _, sh := range ss.shards {
		sh.dur.wal.SetObservers(
			func(seconds float64) { fsync.Observe(seconds) },
			func(bytes int) { appended.Add(float64(bytes)) },
		)
	}
	sum := func(get func(*Store) float64) func() float64 {
		return func() float64 {
			var n float64
			for _, sh := range ss.shards {
				n += get(sh)
			}
			return n
		}
	}
	reg.CounterFunc("relsim_wal_records_total",
		"Records appended to the WALs this process (all shards).",
		sum(func(sh *Store) float64 { return float64(sh.dur.wal.Stats().Appended) }))
	reg.CounterFunc("relsim_wal_fsyncs_total",
		"WAL fsyncs this process (all shards).",
		sum(func(sh *Store) float64 { return float64(sh.dur.wal.Stats().Fsyncs) }))
	reg.GaugeFunc("relsim_wal_segments",
		"Live WAL segment files (all shards).",
		sum(func(sh *Store) float64 { return float64(sh.dur.wal.Stats().Segments) }))
	reg.GaugeFunc("relsim_wal_active_segment_bytes",
		"Bytes in the active WAL segments (all shards).",
		sum(func(sh *Store) float64 { return float64(sh.dur.wal.Stats().ActiveSegmentBytes) }))
}

// sortPinned orders PinStats' pinned versions ascending and computes
// the spread (shared by Store.PinStats and ShardedStore.PinStats).
func sortPinned(ps *PinStats) {
	for i := 1; i < len(ps.Pinned); i++ {
		for j := i; j > 0 && ps.Pinned[j] < ps.Pinned[j-1]; j-- {
			ps.Pinned[j], ps.Pinned[j-1] = ps.Pinned[j-1], ps.Pinned[j]
		}
	}
	if len(ps.Pinned) > 0 && ps.Pinned[0] < ps.Live {
		ps.Spread = ps.Live - ps.Pinned[0]
	}
}
