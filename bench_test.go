// Benchmarks regenerating the paper's evaluation (one per table and
// figure, §7) plus microbenchmarks for the substrate operations. The
// experiment benchmarks print the reproduced table on their first
// iteration so `go test -bench` output doubles as the reproduction log;
// cmd/relsim-bench runs the same experiments with the full grids.
package relsim

import (
	"math/rand"
	"sync"
	"testing"

	"relsim/internal/datasets"
	"relsim/internal/eval"
	"relsim/internal/exp"
	"relsim/internal/graph"
	"relsim/internal/mapping"
	"relsim/internal/metrics"
	"relsim/internal/pattern"
	"relsim/internal/rre"
	"relsim/internal/sim"
)

var printOnce sync.Map

func printFirst(b *testing.B, key, s string) {
	if _, dup := printOnce.LoadOrStore(key, true); !dup {
		b.Log("\n" + s)
	}
}

// BenchmarkTable1 regenerates Table 1: robustness (normalized Kendall
// tau) of RWR, SimRank, PathSim and RelSim across DBLP2SIGM, WSUC2ALCH
// and BioMedT.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Table1()
		printFirst(b, "t1", res.String())
	}
}

// BenchmarkTable2 regenerates Table 2: robustness under
// information-modifying transformations (DBLP2SIGMX, BioMedT(.95),
// DBLP2SIGM(.95)).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Table2()
		printFirst(b, "t2", res.String())
	}
}

// BenchmarkTable3 regenerates Table 3: MRR of RWR, SimRank, HeteSim and
// RelSim over BioMed, original and under BioMedT.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Table3()
		printFirst(b, "t3", res.String())
	}
}

// BenchmarkTable4 regenerates Table 4: average query processing time of
// RelSim vs PathSim on DBLP and BioMed in both input modes.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Table4()
		printFirst(b, "t4", res.String())
	}
}

// BenchmarkFigure5 regenerates Figure 5 on a reduced grid (the full
// 5×7×5-run grid takes ~1 minute; run cmd/relsim-bench -figure 5 for
// it). The shape — time growing with constraint count and pattern
// length — is visible on the reduced grid.
func BenchmarkFigure5(b *testing.B) {
	cfg := exp.Figure5Config{
		ConstraintCounts: []int{1, 5, 10},
		PatternLengths:   []int{4, 6, 8},
		Runs:             2,
		Queries:          2,
	}
	for i := 0; i < b.N; i++ {
		res := exp.Figure5(cfg)
		printFirst(b, "f5", res.String())
	}
}

// BenchmarkAblationOptimizations measures Algorithm 1 with the §6
// optimizations on vs off (extra experiment; see DESIGN.md).
func BenchmarkAblationOptimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.AblationOptimizations(5, []int{4, 6}, 2, 31)
		printFirst(b, "abl", res.String())
	}
}

// BenchmarkExtraBaselines measures the supplementary robustness study
// over common neighbors, Katz and P-Rank (see DESIGN.md extras).
func BenchmarkExtraBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.ExtraBaselines()
		printFirst(b, "extra", res.String())
	}
}

// BenchmarkProposition5 measures the §5 usability-pipeline check with
// Algorithm-1 expansion on both sides of DBLP2SIGM.
func BenchmarkProposition5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Proposition5()
		printFirst(b, "p5", res.String())
	}
}

// --- Microbenchmarks for the substrates ---

func benchGraph() *graph.Graph {
	return datasets.DBLP(datasets.SmallDBLP()).Graph
}

// BenchmarkCommutingMatrix measures building the commuting matrix of the
// DBLP robustness pattern from scratch (no cache reuse across
// iterations).
func BenchmarkCommutingMatrix(b *testing.B) {
	g := benchGraph()
	p := rre.MustParse("p-in-.r-a.r-a-.p-in")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := eval.New(g)
		ev.Commuting(p)
	}
}

// BenchmarkCommutingMatrixRRE measures the RRE operators (skip and
// nest) on the rewritten pattern.
func BenchmarkCommutingMatrixRRE(b *testing.B) {
	g := datasets.DBLP2SIGM().Apply(benchGraph())
	p := rre.MustParse("p-in-.<p-in.r-a>.<r-a-.p-in->.p-in")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := eval.New(g)
		ev.Commuting(p)
	}
}

// BenchmarkChainPlanned and BenchmarkChainLeftToRight measure the
// cost-based concatenation planner on a skewed chain (author
// collaboration hop next to thin hops).
func BenchmarkChainPlanned(b *testing.B) {
	g := benchGraph()
	p := rre.MustParse("w-.w.p-in.r-a-")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := eval.New(g)
		ev.Commuting(p)
	}
}

func BenchmarkChainLeftToRight(b *testing.B) {
	g := benchGraph()
	p := rre.MustParse("w-.w.p-in.r-a-")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := eval.New(g)
		ev.SetChainPlanning(false)
		ev.Commuting(p)
	}
}

// BenchmarkSpGEMM measures sparse matrix multiplication on the
// paper-pattern intermediates.
func BenchmarkSpGEMM(b *testing.B) {
	g := benchGraph()
	a1 := g.Adjacency(datasets.LabelPubIn).Transpose()
	a2 := g.Adjacency(datasets.LabelRscArea)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a1.Mul(a2)
	}
}

// BenchmarkSparseTranspose measures CSR transposition.
func BenchmarkSparseTranspose(b *testing.B) {
	g := benchGraph()
	a := g.Adjacency(datasets.LabelWrites)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Transpose()
	}
}

// BenchmarkRelSimQuery measures one RelSim query with warm commuting
// matrices (the steady-state per-query cost).
func BenchmarkRelSimQuery(b *testing.B) {
	g := benchGraph()
	ev := eval.New(g)
	p := rre.MustParse("p-in-.r-a.r-a-.p-in")
	ev.Materialize(p)
	procs := g.NodesOfType("proc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RelSim(ev, p, procs[i%len(procs)], procs)
	}
}

// BenchmarkPathSimQuery measures the PathSim baseline per query.
func BenchmarkPathSimQuery(b *testing.B) {
	g := benchGraph()
	ev := eval.New(g)
	p := rre.MustParse("p-in-.r-a.r-a-.p-in")
	ev.Materialize(p)
	procs := g.NodesOfType("proc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.PathSim(ev, p, procs[i%len(procs)], procs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeteSimQuery measures one HeteSim query on BioMed.
func BenchmarkHeteSimQuery(b *testing.B) {
	data := datasets.BioMed(datasets.SmallBioMed())
	ev := eval.New(data.Graph)
	p := rre.MustParse("dz-ph.ph-pr.tgt-")
	drugs := data.Graph.NodesOfType("drug")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.HeteSimRRE(ev, p, data.Queries[i%len(data.Queries)], drugs)
	}
}

// BenchmarkRWRQuery measures one RWR query (restart 0.8, power
// iteration).
func BenchmarkRWRQuery(b *testing.B) {
	g := benchGraph()
	ev := eval.New(g)
	procs := g.NodesOfType("proc")
	opt := sim.DefaultRWR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RWR(ev, opt, procs[i%len(procs)], procs)
	}
}

// BenchmarkSimRankSamplerBuild measures the one-time Monte-Carlo walk
// simulation.
func BenchmarkSimRankSamplerBuild(b *testing.B) {
	g := benchGraph()
	ev := eval.New(g)
	opt := sim.DefaultSimRank()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.NewSimRankSampler(ev, opt)
	}
}

// BenchmarkSimRankQuery measures one SimRank query against a prebuilt
// sampler.
func BenchmarkSimRankQuery(b *testing.B) {
	g := benchGraph()
	ev := eval.New(g)
	s := sim.NewSimRankSampler(ev, sim.DefaultSimRank())
	procs := g.NodesOfType("proc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(procs[i%len(procs)], procs)
	}
}

// BenchmarkAlgorithm1 measures pattern-set generation for the DBLP
// input with the §6 optimizations on.
func BenchmarkAlgorithm1(b *testing.B) {
	s := datasets.DBLPSchema()
	p := rre.MustParse("p-in-.r-a.r-a-.p-in")
	opt := pattern.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pattern.Generate(s, p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm1Unoptimized is the §6-off counterpart.
func BenchmarkAlgorithm1Unoptimized(b *testing.B) {
	s := datasets.DBLPSchema()
	p := rre.MustParse("p-in-.r-a.r-a-.p-in")
	opt := pattern.Unoptimized()
	opt.MaxPatterns = 1024
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pattern.Generate(s, p, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyTransformation measures the closed-world chase on the
// small DBLP instance.
func BenchmarkApplyTransformation(b *testing.B) {
	g := benchGraph()
	t := datasets.DBLP2SIGM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Apply(g)
	}
}

// BenchmarkRewritePattern measures the Theorem 2 rewriting.
func BenchmarkRewritePattern(b *testing.B) {
	inv := datasets.DBLP2SIGMInverse()
	p := rre.MustParse("p-in-.r-a.r-a-.p-in")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapping.RewritePattern(p, inv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKendallTau measures the top-k list comparison.
func BenchmarkKendallTau(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mk := func() []graph.NodeID {
		out := make([]graph.NodeID, 10)
		for i := range out {
			out[i] = graph.NodeID(rng.Intn(40))
		}
		return out
	}
	x, y := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.KendallTauTopK(x, y, 10)
	}
}

// BenchmarkGraphAdjacency measures adjacency-matrix extraction.
func BenchmarkGraphAdjacency(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Adjacency(datasets.LabelWrites)
	}
}

// BenchmarkBooleanClosure measures the Kleene-star fixed point on the
// phenotype parent forest.
func BenchmarkBooleanClosure(b *testing.B) {
	data := datasets.BioMed(datasets.SmallBioMed())
	a := data.Graph.Adjacency(datasets.LabelParent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.BooleanClosure()
	}
}

// BenchmarkMASEffectiveness measures the MAS twin-area effectiveness
// study (§7.2's MAS side, reconstructed).
func BenchmarkMASEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.MASEffectiveness()
		printFirst(b, "mas", res.String())
	}
}
