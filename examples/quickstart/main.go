// Quickstart: the paper's Figure 1 example end to end.
//
// We build the two bibliographic fragments of Figure 1 — the DBLP style
// (papers directly connected to research areas) and the SIGMOD Record
// style (areas connected to conferences instead) — which represent the
// same information. PathSim with the obvious meta-path disagrees across
// the two representations; RelSim with RRE patterns returns the same
// ranking on both.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"relsim"
)

// figure1a builds the DBLP-style fragment: paper -area→ research area,
// paper -pub-in→ conference.
func figure1a() (*relsim.Graph, map[string]relsim.NodeID) {
	g := relsim.NewGraph()
	n := map[string]relsim.NodeID{}
	for _, spec := range []struct{ name, typ string }{
		{"Software Engineering", "area"},
		{"Data Mining", "area"},
		{"Databases", "area"},
		{"Code Mining", "paper"},
		{"Pattern Mining", "paper"},
		{"Similarity Mining", "paper"},
		{"SIGKDD", "proc"},
		{"VLDB", "proc"},
	} {
		n[spec.name] = g.AddNode(spec.name, spec.typ)
	}
	for _, e := range []struct{ f, l, t string }{
		{"Code Mining", "area", "Software Engineering"},
		{"Code Mining", "area", "Data Mining"},
		{"Pattern Mining", "area", "Data Mining"},
		{"Pattern Mining", "area", "Databases"},
		{"Similarity Mining", "area", "Data Mining"},
		{"Similarity Mining", "area", "Databases"},
		{"Code Mining", "pub-in", "SIGKDD"},
		{"Pattern Mining", "pub-in", "VLDB"},
		{"Similarity Mining", "pub-in", "VLDB"},
	} {
		g.AddEdge(n[e.f], e.l, n[e.t])
	}
	return g, n
}

// figure1b builds the SIGMOD-Record-style fragment of the same
// information: conference -field→ research area, paper -pub-in→
// conference. Every paper's research areas are recoverable through its
// conference's fields, which is what makes the two fragments
// information-equivalent (Example 2 of the paper).
func figure1b() (*relsim.Graph, map[string]relsim.NodeID) {
	g := relsim.NewGraph()
	n := map[string]relsim.NodeID{}
	for _, spec := range []struct{ name, typ string }{
		{"Software Engineering", "area"},
		{"Data Mining", "area"},
		{"Databases", "area"},
		{"Code Mining", "paper"},
		{"Pattern Mining", "paper"},
		{"Similarity Mining", "paper"},
		{"SIGKDD", "proc"},
		{"VLDB", "proc"},
	} {
		n[spec.name] = g.AddNode(spec.name, spec.typ)
	}
	for _, e := range []struct{ f, l, t string }{
		{"SIGKDD", "field", "Software Engineering"},
		{"SIGKDD", "field", "Data Mining"},
		{"VLDB", "field", "Data Mining"},
		{"VLDB", "field", "Databases"},
		{"Code Mining", "pub-in", "SIGKDD"},
		{"Pattern Mining", "pub-in", "VLDB"},
		{"Similarity Mining", "pub-in", "VLDB"},
	} {
		g.AddEdge(n[e.f], e.l, n[e.t])
	}
	return g, n
}

func show(title string, g *relsim.Graph, r relsim.Ranking) {
	fmt.Println(title)
	if r.Len() == 0 {
		fmt.Println("   (no answers)")
	}
	for i := 0; i < r.Len(); i++ {
		fmt.Printf("  %d. %-22s %.4f\n", i+1, g.Node(r.IDs[i]).Name, r.Scores[i])
	}
}

func main() {
	ga, na := figure1a()
	gb, nb := figure1b()
	engA := relsim.NewEngine(ga, nil)
	engB := relsim.NewEngine(gb, nil)
	areasA := ga.NodesOfType("area")
	areasB := gb.NodesOfType("area")

	fmt.Println("Which research area is most similar to Data Mining?")
	fmt.Println()

	// A PathSim user picks the natural meta-path on each representation.
	pA := relsim.MustParsePattern("area-.pub-in.pub-in-.area")
	rA, err := engA.PathSim(pA, na["Data Mining"], areasA)
	if err != nil {
		panic(err)
	}
	show("PathSim on Figure 1(a) with area-.pub-in.pub-in-.area:", ga, rA)

	pB := relsim.MustParsePattern("field-.field")
	rB, err := engB.PathSim(pB, nb["Data Mining"], areasB)
	if err != nil {
		panic(err)
	}
	show("PathSim on Figure 1(b) with field-.field:", gb, rB)
	fmt.Println("→ same information, different answers: Databases and Software")
	fmt.Println("  Engineering tie on 1(b) although 1(a) clearly prefers Databases.")
	fmt.Println()

	// RelSim expresses the equivalent relationship on 1(b) with the RRE
	// nested operator: shared conferences weighted by their publications
	// (the paper's p4).
	p4 := relsim.MustParsePattern("field-.[pub-in-].[pub-in-].field")
	r4 := engB.RelSim(p4, nb["Data Mining"], areasB)
	show("RelSim on Figure 1(b) with field-.[pub-in-].[pub-in-].field:", gb, r4)
	fmt.Println("→ the nested pattern recovers the 1(a) ranking: structural")
	fmt.Println("  robustness via the RRE language (paper §4.2).")
}
