// BioMed: drug discovery with structurally robust similarity search.
//
// This example runs the paper's motivating biomedical workload (§7): a
// knowledge graph of phenotypes, diseases, proteins, drugs and
// anatomies, where curators materialize derived
// "indirect-associated-with" edges — and periodically drop them again
// during restructuring (the BioMedT transformation). We ask, for each of
// a set of query diseases, which drug is most related, and compare:
//
//   - HeteSim with the direct meta-path (ignores indirect evidence);
//   - RelSim with an RRE that also counts indirect phenotype
//     associations, plus its Corollary-1 rewriting once the indirect
//     edges are dropped.
//
// The dataset generator lives in internal/datasets (it is reproduction
// scaffolding for the paper's private NIH graph); the queries run
// through the public API.
//
// Run with: go run ./examples/biomed
package main

import (
	"fmt"

	"relsim"
	"relsim/internal/datasets"
)

func main() {
	cfg := datasets.DefaultBioMed()
	cfg.Queries = 10
	data := datasets.BioMed(cfg)
	g := data.Graph
	fmt.Printf("BioMed graph: %v\n", g)

	// The curators' restructuring: drop all derived indirect edges.
	t, inv := datasets.BioMedT(), datasets.BioMedTInverse()
	if !relsim.VerifyInverse(g, t, inv) {
		panic("BioMedT must be invertible: indirect edges are derivable")
	}
	dropped := t.Apply(g)
	fmt.Printf("after BioMedT: %v (indirect edges removed, still recoverable)\n\n", dropped)

	engFull := relsim.NewEngine(g, datasets.BioMedSchema())
	engDropped := relsim.NewEngine(dropped, nil)
	drugs := g.NodesOfType("drug")

	// Direct-only meta-path vs the RRE with indirect associations.
	direct := relsim.MustParsePattern("dz-ph.ph-pr.tgt-")
	rich := relsim.MustParsePattern("(dz-ph + ind-dz-ph).ph-pr.tgt-")
	richDropped, err := relsim.RewritePattern(rich, inv)
	if err != nil {
		panic(err)
	}
	fmt.Printf("direct meta-path:           %s\n", direct)
	fmt.Printf("RRE with indirect evidence: %s\n", rich)
	fmt.Printf("rewritten after BioMedT:    %s\n\n", richDropped)

	var rrDirect, rrRich, stable float64
	for i, q := range data.Queries {
		hDirect := engFull.HeteSim(direct, q, drugs)
		hRich := engFull.HeteSim(rich, q, drugs)
		hRichDropped := engDropped.HeteSim(richDropped, q, drugs)

		var gt relsim.NodeID
		for d := range data.Relevant[i] {
			gt = d
		}
		rrDirect += reciprocal(hDirect.Rank(gt))
		rrRich += reciprocal(hRich.Rank(gt))
		if sameTop(hRich, hRichDropped, 10) {
			stable++
		}
		if i < 3 {
			fmt.Printf("%s: ground truth %s ranks #%d (direct) vs #%d (RRE)\n",
				g.Node(q).Name, g.Node(gt).Name, hDirect.Rank(gt), hRich.Rank(gt))
		}
	}
	n := float64(len(data.Queries))
	fmt.Printf("\nMRR direct meta-path: %.3f\n", rrDirect/n)
	fmt.Printf("MRR RRE pattern:      %.3f\n", rrRich/n)
	fmt.Printf("queries with identical top-10 after BioMedT: %.0f/%d\n", stable, len(data.Queries))
}

func reciprocal(rank int) float64 {
	if rank == 0 {
		return 0
	}
	return 1 / float64(rank)
}

func sameTop(a, b relsim.Ranking, k int) bool {
	ta, tb := a.TopK(k), b.TopK(k)
	if ta.Len() != tb.Len() {
		return false
	}
	for i := range ta.IDs {
		if ta.IDs[i] != tb.IDs[i] {
			return false
		}
	}
	return true
}
