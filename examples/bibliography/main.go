// Bibliography: structural robustness across a schema transformation.
//
// This example builds a small DBLP-style bibliography with the public
// API, declares the paper's tgd constraint, applies the DBLP2SIGM schema
// transformation (research areas move from papers to proceedings), and
// compares algorithms across the two representations:
//
//   - PathSim with the natural meta-path on each side returns different
//     top-k lists (nonzero Kendall tau);
//   - RelSim with the Corollary-1 rewritten RRE pattern returns exactly
//     the same ranking.
//
// Run with: go run ./examples/bibliography
package main

import (
	"fmt"
	"math/rand"

	"relsim"
)

const (
	numAreas      = 12
	numProcs      = 40
	papersPerProc = 8
)

// buildDBLP generates a bibliography satisfying the paper's constraint:
// all papers of a proceedings share the proceedings' area set.
func buildDBLP(seed int64) (*relsim.Graph, []relsim.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	g := relsim.NewGraph()
	areas := make([]relsim.NodeID, numAreas)
	for i := range areas {
		areas[i] = g.AddNode(fmt.Sprintf("area%d", i), "area")
	}
	procs := make([]relsim.NodeID, numProcs)
	for i := range procs {
		procs[i] = g.AddNode(fmt.Sprintf("proc%d", i), "proc")
	}
	paper := 0
	for i, c := range procs {
		// Each proceedings covers 1-3 areas.
		k := 1 + rng.Intn(3)
		procAreas := map[int]bool{}
		for len(procAreas) < k {
			procAreas[rng.Intn(numAreas)] = true
		}
		n := 2 + rng.Intn(papersPerProc)
		for j := 0; j < n; j++ {
			p := g.AddNode(fmt.Sprintf("paper%d", paper), "paper")
			paper++
			g.AddEdge(p, "p-in", c)
			for a := range procAreas {
				g.AddEdge(p, "r-a", areas[a])
			}
		}
		_ = i
	}
	return g, procs
}

// dblp2sigm moves research areas from papers to proceedings.
func dblp2sigm() relsim.Transformation {
	return relsim.Transformation{
		Name: "DBLP2SIGM",
		Rules: []relsim.Rule{
			{
				Name:       "copy-p-in",
				Premise:    []relsim.Atom{relsim.At("x", "p-in", "y")},
				Conclusion: []relsim.ConclusionAtom{{From: "x", Label: "p-in", To: "y"}},
			},
			{
				Name: "area-to-proc",
				Premise: []relsim.Atom{
					relsim.At("p", "p-in", "c"),
					relsim.At("p", "r-a", "a"),
				},
				Conclusion: []relsim.ConclusionAtom{{From: "c", Label: "r-a", To: "a"}},
			},
		},
	}
}

// inverse reconstructs the DBLP structure.
func inverse() relsim.Transformation {
	return relsim.Transformation{
		Name: "DBLP2SIGM⁻¹",
		Rules: []relsim.Rule{
			{
				Name:       "copy-p-in",
				Premise:    []relsim.Atom{relsim.At("x", "p-in", "y")},
				Conclusion: []relsim.ConclusionAtom{{From: "x", Label: "p-in", To: "y"}},
			},
			{
				Name: "area-to-paper",
				Premise: []relsim.Atom{
					relsim.At("p", "p-in", "c"),
					relsim.At("c", "r-a", "a"),
				},
				Conclusion: []relsim.ConclusionAtom{{From: "p", Label: "r-a", To: "a"}},
			},
		},
	}
}

func overlapAt5(a, b relsim.Ranking) int {
	n := 0
	for _, x := range a.TopK(5).IDs {
		for _, y := range b.TopK(5).IDs {
			if x == y {
				n++
			}
		}
	}
	return n
}

func main() {
	src, procs := buildDBLP(42)
	t, inv := dblp2sigm(), inverse()
	if !relsim.VerifyInverse(src, t, inv) {
		panic("transformation must be invertible on this instance")
	}
	dst := t.Apply(src)
	fmt.Printf("source: %v\ntransformed: %v (information-equivalent)\n\n", src, dst)

	engS := relsim.NewEngine(src, nil)
	engT := relsim.NewEngine(dst, nil)

	// Proceedings similar by shared research areas, weighted by papers.
	patternS := relsim.MustParsePattern("p-in-.r-a.r-a-.p-in")
	// The meta-path a PathSim user would pick on the transformed side.
	closestT := relsim.MustParsePattern("r-a.r-a-")
	// The provably equivalent RRE pattern (Theorem 2 / Corollary 1).
	rewritten, err := relsim.RewritePattern(patternS, inv)
	if err != nil {
		panic(err)
	}
	fmt.Printf("pattern over source:        %s\n", patternS)
	fmt.Printf("closest simple over target: %s\n", closestT)
	fmt.Printf("rewritten RRE over target:  %s\n\n", rewritten)

	var pathSimStable, relSimStable, queries int
	for _, q := range procs[:20] {
		ps1, err := engS.PathSim(patternS, q, procs)
		if err != nil {
			panic(err)
		}
		ps2, err := engT.PathSim(closestT, q, procs)
		if err != nil {
			panic(err)
		}
		rs1 := engS.RelSim(patternS, q, procs)
		rs2 := engT.RelSim(rewritten, q, procs)
		queries++
		if overlapAt5(ps1, ps2) == 5 && sameOrder(ps1.TopK(5), ps2.TopK(5)) {
			pathSimStable++
		}
		if sameOrder(rs1, rs2) {
			relSimStable++
		}
	}
	fmt.Printf("queries with identical top-5 across the transformation:\n")
	fmt.Printf("  PathSim (closest meta-path): %d/%d\n", pathSimStable, queries)
	fmt.Printf("  RelSim (rewritten RRE):      %d/%d\n", relSimStable, queries)

	// Show one query in detail.
	q := procs[3]
	ps1, _ := engS.PathSim(patternS, q, procs)
	ps2, _ := engT.PathSim(closestT, q, procs)
	rs2 := engT.RelSim(rewritten, q, procs)
	fmt.Printf("\nexample query %s:\n", src.Node(q).Name)
	fmt.Printf("  PathSim source top-3:      %s\n", names(src, ps1.TopK(3)))
	fmt.Printf("  PathSim transformed top-3: %s\n", names(src, ps2.TopK(3)))
	fmt.Printf("  RelSim transformed top-3:  %s (matches source exactly)\n", names(src, rs2.TopK(3)))
}

func sameOrder(a, b relsim.Ranking) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			return false
		}
	}
	return true
}

func names(g *relsim.Graph, r relsim.Ranking) string {
	s := ""
	for i, id := range r.IDs {
		if i > 0 {
			s += ", "
		}
		s += g.Node(id).Name
	}
	return s
}
