// Explain: inspecting why two entities are similar.
//
// RelSim scores are counts of relationship-pattern instances (paper
// §4.2), so every score can be explained by materializing the instances
// behind it. This example builds the Figure 1(a) fragment, asks why
// Data Mining and Databases are similar, and prints the concrete
// traversals — then does the same for an RRE with skip and nested
// operators, and for a conjunctive RRE (the §4.2 extension for cyclic
// relationship shapes).
//
// Run with: go run ./examples/explain
package main

import (
	"fmt"

	"relsim"
)

func main() {
	g := relsim.NewGraph()
	n := map[string]relsim.NodeID{}
	add := func(name, typ string) { n[name] = g.AddNode(name, typ) }
	add("Software Engineering", "area")
	add("Data Mining", "area")
	add("Databases", "area")
	add("Code Mining", "paper")
	add("Pattern Mining", "paper")
	add("Similarity Mining", "paper")
	add("SIGKDD", "proc")
	add("VLDB", "proc")
	for _, e := range []struct{ f, l, t string }{
		{"Code Mining", "area", "Software Engineering"},
		{"Code Mining", "area", "Data Mining"},
		{"Pattern Mining", "area", "Data Mining"},
		{"Pattern Mining", "area", "Databases"},
		{"Similarity Mining", "area", "Data Mining"},
		{"Similarity Mining", "area", "Databases"},
		{"Code Mining", "pub-in", "SIGKDD"},
		{"Pattern Mining", "pub-in", "VLDB"},
		{"Similarity Mining", "pub-in", "VLDB"},
	} {
		g.AddEdge(n[e.f], e.l, n[e.t])
	}
	eng := relsim.NewEngine(g, nil)

	p := relsim.MustParsePattern("area-.area")
	score := eng.RelSim(p, n["Data Mining"], []relsim.NodeID{n["Databases"]})
	fmt.Printf("RelSim(Data Mining, Databases | %s) = %.3f because:\n", p, score.Scores[0])
	for _, ex := range eng.Explain(p, n["Data Mining"], n["Databases"], 0) {
		fmt.Println("  ", ex)
	}

	// An RRE with skip: only the existence of the connection matters.
	sk := relsim.MustParsePattern("<area-.pub-in>")
	fmt.Printf("\ninstances of %s from Data Mining to VLDB:\n", sk)
	for _, ex := range eng.Explain(sk, n["Data Mining"], n["VLDB"], 0) {
		fmt.Println("  ", ex)
	}

	// A nested pattern: papers counted at the conference.
	nest := relsim.MustParsePattern("[pub-in-]")
	fmt.Printf("\ninstances of %s at VLDB (its publications, ending back at VLDB):\n", nest)
	for _, ex := range eng.Explain(nest, n["VLDB"], n["VLDB"], 0) {
		fmt.Println("  ", ex)
	}

	// Conjunctive RRE: areas related through a SHARED paper that is also
	// published somewhere — the cyclic shape a single RRE cannot express.
	c := relsim.ConjunctivePattern{
		From: "a1", To: "a2",
		Atoms: []relsim.ConjAtom{
			{From: "p", Path: relsim.MustParsePattern("area"), To: "a1"},
			{From: "p", Path: relsim.MustParsePattern("area"), To: "a2"},
			{From: "p", Path: relsim.MustParsePattern("pub-in"), To: "c"},
		},
	}
	s, err := eng.ConjunctiveSimilarity(c, n["Data Mining"], n["Databases"])
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nconjunctive similarity (shared *published* papers): %.3f\n", s)
	s2, _ := eng.ConjunctiveSimilarity(c, n["Data Mining"], n["Software Engineering"])
	fmt.Printf("conjunctive similarity vs Software Engineering:      %.3f\n", s2)
}
