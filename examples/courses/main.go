// Courses: usable robustness with simple input patterns (Algorithm 1).
//
// The RRE language is powerful but writing nested/skip operators by hand
// is hard. Section 5 of the paper proposes letting users submit a plain
// meta-path; the system expands it against the schema's tgd constraints
// into the set E_p of related RREs and aggregates their scores. This
// example runs that pipeline on a WSU-style course database: the user
// asks for courses similar by shared subjects with co-.os.os-.co, and
// the engine transparently adds the constraint-derived variants.
//
// Run with: go run ./examples/courses
package main

import (
	"fmt"

	"relsim"
)

func main() {
	g, courses := buildCourses()
	s := relsim.NewSchema(
		[]string{"co", "os", "t"},
		// Offerings of the same course share subjects (§7.1).
		relsim.TGD("wsu-subject",
			[]relsim.Atom{
				relsim.At("o1", "os", "s"),
				relsim.At("o1", "co", "c"),
				relsim.At("o2", "co", "c"),
			},
			"o2", "os", "s"),
	)
	eng := relsim.NewEngine(g, s)
	if bad := eng.CheckConstraints(5); len(bad) > 0 {
		panic(fmt.Sprint("constraint violations: ", bad))
	}

	input := relsim.MustParsePattern("co-.os.os-.co")
	expanded, err := eng.ExpandPattern(input)
	if err != nil {
		panic(err)
	}
	fmt.Printf("user input (simple meta-path): %s\n", input)
	fmt.Printf("Algorithm 1 expanded it into %d patterns:\n", len(expanded))
	for i, p := range expanded {
		if i >= 8 {
			fmt.Printf("  ... and %d more\n", len(expanded)-8)
			break
		}
		fmt.Printf("  %s\n", p)
	}

	q := courses[0]
	rank, err := eng.Search("co-.os.os-.co", q, relsim.WithCandidates(courses))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncourses most similar to %s (aggregated RelSim):\n", g.Node(q).Name)
	for i := 0; i < rank.Len() && i < 5; i++ {
		fmt.Printf("  %d. %-12s %.4f\n", i+1, g.Node(rank.IDs[i]).Name, rank.Scores[i])
	}

	// The same query without expansion, for contrast.
	plain, err := eng.SearchPattern(input, q, relsim.WithCandidates(courses), relsim.WithoutExpansion())
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nplain PathSim on the input pattern:\n")
	for i := 0; i < plain.Len() && i < 5; i++ {
		fmt.Printf("  %d. %-12s %.4f\n", i+1, g.Node(plain.IDs[i]).Name, plain.Scores[i])
	}
}

// buildCourses builds a small course database in the Figure 3(a) style:
// co: offer→course, os: offer→subject, t: instructor→offer, with all
// offerings of a course sharing the course's subject set.
func buildCourses() (*relsim.Graph, []relsim.NodeID) {
	g := relsim.NewGraph()
	subjects := make([]relsim.NodeID, 6)
	for i := range subjects {
		subjects[i] = g.AddNode(fmt.Sprintf("subject%d", i), "subject")
	}
	instructors := make([]relsim.NodeID, 5)
	for i := range instructors {
		instructors[i] = g.AddNode(fmt.Sprintf("prof%d", i), "instructor")
	}
	// courseSubjects[i] lists subject indices; deterministic layout with
	// overlapping subject sets so similarity is interesting.
	courseSubjects := [][]int{
		{0, 1}, {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}, {1, 3},
	}
	courses := make([]relsim.NodeID, len(courseSubjects))
	offer := 0
	for i, subs := range courseSubjects {
		courses[i] = g.AddNode(fmt.Sprintf("course%d", i), "course")
		offers := 1 + i%3
		for k := 0; k < offers; k++ {
			o := g.AddNode(fmt.Sprintf("offer%d", offer), "offer")
			offer++
			g.AddEdge(o, "co", courses[i])
			for _, sidx := range subs {
				g.AddEdge(o, "os", subjects[sidx])
			}
			g.AddEdge(instructors[(i+k)%len(instructors)], "t", o)
		}
	}
	return g, courses
}
