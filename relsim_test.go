package relsim

import (
	"strings"
	"testing"
)

// courseGraph builds a small WSU-style database where all offerings of a
// course share the course's subjects (the §7.1 constraint).
func courseGraph() (*Graph, []NodeID, []NodeID) {
	g := NewGraph()
	subjects := make([]NodeID, 4)
	for i := range subjects {
		subjects[i] = g.AddNode("subject"+string(rune('A'+i)), "subject")
	}
	courseSubjects := [][]int{{0, 1}, {0, 1}, {1, 2}, {2, 3}}
	courses := make([]NodeID, len(courseSubjects))
	offer := 0
	for i, subs := range courseSubjects {
		courses[i] = g.AddNode("course"+string(rune('0'+i)), "course")
		for k := 0; k <= i%2; k++ {
			o := g.AddNode("", "offer")
			offer++
			g.AddEdge(o, "co", courses[i])
			for _, s := range subs {
				g.AddEdge(o, "os", subjects[s])
			}
		}
	}
	return g, courses, subjects
}

func courseSchema() *Schema {
	return NewSchema([]string{"co", "os"},
		TGD("wsu-subject",
			[]Atom{
				At("o1", "os", "s"),
				At("o1", "co", "c"),
				At("o2", "co", "c"),
			},
			"o2", "os", "s"))
}

func TestParsePattern(t *testing.T) {
	p, err := ParsePattern("co-.os.os-.co")
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsSimple() {
		t.Error("meta-path must be simple")
	}
	if _, err := ParsePattern("((("); err == nil {
		t.Error("bad input must fail")
	}
}

func TestMustParsePatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParsePattern must panic on bad input")
		}
	}()
	MustParsePattern(")")
}

func TestEngineSearch(t *testing.T) {
	g, courses, _ := courseGraph()
	eng := NewEngine(g, courseSchema())
	if bad := eng.CheckConstraints(5); len(bad) != 0 {
		t.Fatalf("constraints violated: %v", bad)
	}
	r, err := eng.Search("co-.os.os-.co", courses[0], WithCandidates(courses))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 {
		t.Fatal("empty search result")
	}
	// course1 shares both subjects with course0 and must rank first.
	if r.IDs[0] != courses[1] {
		t.Errorf("top = %v, want course1", g.Node(r.IDs[0]).Name)
	}
}

func TestEngineSearchWithCandidateType(t *testing.T) {
	g, courses, _ := courseGraph()
	eng := NewEngine(g, courseSchema())
	r, err := eng.Search("co-.os.os-.co", courses[0], WithCandidateType(g, "course"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range r.IDs {
		if g.Node(id).Type != "course" {
			t.Errorf("non-course answer %v", id)
		}
	}
}

func TestEngineSearchWithoutExpansion(t *testing.T) {
	g, courses, _ := courseGraph()
	eng := NewEngine(g, courseSchema())
	p := MustParsePattern("co-.os.os-.co")
	expanded, err := eng.SearchPattern(p, courses[0], WithCandidates(courses))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eng.SearchPattern(p, courses[0], WithCandidates(courses), WithoutExpansion())
	if err != nil {
		t.Fatal(err)
	}
	// Expansion aggregates more patterns, so scores must not be smaller.
	if expanded.Len() == 0 || plain.Len() == 0 {
		t.Fatal("empty rankings")
	}
	if expanded.Scores[0] < plain.Scores[0] {
		t.Errorf("aggregate score %v < plain %v", expanded.Scores[0], plain.Scores[0])
	}
}

func TestEngineSearchBadInput(t *testing.T) {
	g, courses, _ := courseGraph()
	eng := NewEngine(g, courseSchema())
	if _, err := eng.Search("", courses[0]); err == nil {
		t.Error("empty pattern must fail")
	}
	if _, err := eng.Search("co", NodeID(10_000)); err == nil {
		t.Error("unknown query node must fail")
	}
}

func TestEngineNilSchema(t *testing.T) {
	g, courses, _ := courseGraph()
	eng := NewEngine(g, nil)
	r, err := eng.Search("co-.os.os-.co", courses[0], WithCandidates(courses))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 {
		t.Fatal("nil-schema search must still work (plain RelSim)")
	}
	if got := len(eng.Schema().Labels); got != 2 {
		t.Errorf("derived schema labels = %d, want 2", got)
	}
}

func TestEngineExpandPattern(t *testing.T) {
	g, _, _ := courseGraph()
	eng := NewEngine(g, courseSchema())
	ps, err := eng.ExpandPattern(MustParsePattern("co-.os"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) < 2 {
		t.Errorf("expected expansion beyond the input, got %d patterns", len(ps))
	}
	if _, err := eng.ExpandPattern(MustParsePattern("[co]")); err == nil {
		t.Error("non-simple input must be rejected")
	}
}

func TestEngineNonSimpleSearch(t *testing.T) {
	g, courses, _ := courseGraph()
	eng := NewEngine(g, courseSchema())
	// RRE input skips Algorithm 1 and scores directly.
	r, err := eng.Search("co-.<os>.<os->.co", courses[0], WithCandidates(courses))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 {
		t.Fatal("RRE search returned nothing")
	}
}

func TestEngineInstanceCount(t *testing.T) {
	g, courses, subjects := courseGraph()
	eng := NewEngine(g, courseSchema())
	p := MustParsePattern("co-.os")
	// course0 has one offering connected to subjects A and B.
	if got := eng.InstanceCount(p, courses[0], subjects[0]); got != 1 {
		t.Errorf("count(course0→subjectA) = %d, want 1", got)
	}
	if got := eng.InstanceCount(p, courses[0], subjects[3]); got != 0 {
		t.Errorf("count(course0→subjectD) = %d, want 0", got)
	}
}

func TestEngineExplainWitness(t *testing.T) {
	g, courses, _ := courseGraph()
	eng := NewEngine(g, courseSchema())
	p := MustParsePattern("co-.os.os-.co")
	// course0 and course1 share subjects A and B; the derivation visits
	// offer → subject → offer, three intermediate nodes.
	ex, ok := eng.ExplainWitness(p, courses[0], courses[1])
	if !ok {
		t.Fatal("no witness for connected pair course0→course1")
	}
	if want := eng.InstanceCount(p, courses[0], courses[1]); ex.Count != want {
		t.Errorf("witness count = %d, want %d (InstanceCount)", ex.Count, want)
	}
	if len(ex.Steps) != 3 || ex.PathNodes != 3 || ex.Truncated {
		t.Errorf("witness derivation = %+v, want 3 untruncated steps", ex)
	}
	for _, id := range ex.Steps {
		if !g.Has(id) {
			t.Errorf("witness step %d is not a graph node", id)
		}
	}
	if _, ok := eng.ExplainWitness(p, courses[0], courses[3]); ok {
		t.Error("witness reported for disconnected pair course0→course3 (no shared subject)")
	}
}

func TestEngineBaselineWrappers(t *testing.T) {
	g, courses, _ := courseGraph()
	eng := NewEngine(g, courseSchema())
	if r := eng.RWR(courses[0], courses); r.Len() == 0 {
		t.Error("RWR wrapper empty")
	}
	if r := eng.SimRank(courses[0], courses); r.Len() == 0 {
		t.Error("SimRank wrapper empty")
	}
	if r := eng.HeteSim(MustParsePattern("co-.os"), courses[0], nil); r.Len() == 0 {
		t.Error("HeteSim wrapper empty")
	}
	if _, err := eng.PathSim(MustParsePattern("[co]"), courses[0], nil); err == nil {
		t.Error("PathSim wrapper must reject non-simple patterns")
	}
}

func TestRewriteAndVerifyInverseFacade(t *testing.T) {
	// Course database under the WSUC2ALCH-style transformation, all
	// through the facade types.
	g, _, _ := courseGraph()
	t1 := Transformation{
		Name: "toAlchemy",
		Rules: []Rule{
			{
				Name:       "copy-co",
				Premise:    []Atom{At("x", "co", "y")},
				Conclusion: []ConclusionAtom{{From: "x", Label: "co", To: "y"}},
			},
			{
				Name: "subject-to-course",
				Premise: []Atom{
					At("o", "co", "c"),
					At("o", "os", "s"),
				},
				Conclusion: []ConclusionAtom{{From: "c", Label: "cs", To: "s"}},
			},
		},
	}
	inv := Transformation{
		Name: "back",
		Rules: []Rule{
			{
				Name:       "copy-co",
				Premise:    []Atom{At("x", "co", "y")},
				Conclusion: []ConclusionAtom{{From: "x", Label: "co", To: "y"}},
			},
			{
				Name: "subject-to-offer",
				Premise: []Atom{
					At("o", "co", "c"),
					At("c", "cs", "s"),
				},
				Conclusion: []ConclusionAtom{{From: "o", Label: "os", To: "s"}},
			},
		},
	}
	if !VerifyInverse(g, t1, inv) {
		t.Fatal("transformation must be invertible on the constraint-satisfying instance")
	}
	p := MustParsePattern("co-.os.os-.co")
	q, err := RewritePattern(p, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "cs") {
		t.Errorf("rewritten pattern %s should use the cs label", q)
	}

	// Theorem 2: identical rankings across the transformation.
	dst := t1.Apply(g)
	engS, engT := NewEngine(g, nil), NewEngine(dst, nil)
	courses := g.NodesOfType("course")
	for _, query := range courses {
		a := engS.RelSim(p, query, courses)
		b := engT.RelSim(q, query, courses)
		if a.Len() != b.Len() {
			t.Fatalf("lengths differ for %d", query)
		}
		for i := range a.IDs {
			if a.IDs[i] != b.IDs[i] || a.Scores[i] != b.Scores[i] {
				t.Fatalf("rankings differ for %d at %d", query, i)
			}
		}
	}
}

func TestEngineMaterialize(t *testing.T) {
	g, courses, _ := courseGraph()
	eng := NewEngine(g, nil)
	p := MustParsePattern("co-.os.os-.co")
	eng.Materialize(p)
	r, err := eng.SearchPattern(p, courses[0], WithoutExpansion())
	if err != nil || r.Len() == 0 {
		t.Fatalf("materialized search failed: %v", err)
	}
}

func TestEngineExplain(t *testing.T) {
	g, courses, subjects := courseGraph()
	eng := NewEngine(g, nil)
	p := MustParsePattern("co-.os")
	ins := eng.Explain(p, courses[0], subjects[0], 0)
	if len(ins) == 0 {
		t.Fatal("expected at least one explanation")
	}
	if !strings.Contains(ins[0], "course0") || !strings.Contains(ins[0], "subjectA") {
		t.Errorf("explanation should use node names: %q", ins[0])
	}
	if len(eng.Explain(p, courses[0], subjects[3], 0)) != 0 {
		t.Error("unconnected pair must have no explanation")
	}
	// The limit caps output.
	all := eng.Explain(MustParsePattern("co-.os.os-.co"), courses[0], courses[1], 0)
	if len(all) < 2 {
		t.Fatalf("expected multiple instances, got %d", len(all))
	}
	if got := eng.Explain(MustParsePattern("co-.os.os-.co"), courses[0], courses[1], 1); len(got) != 1 {
		t.Errorf("limit ignored: %d", len(got))
	}
}

func TestEngineConjunctiveSimilarity(t *testing.T) {
	g, courses, _ := courseGraph()
	eng := NewEngine(g, nil)
	// Courses sharing a subject through their offerings, conjunctively.
	c := ConjunctivePattern{
		From: "c1", To: "c2",
		Atoms: []ConjAtom{
			{From: "c1", Path: MustParsePattern("co-.os"), To: "s"},
			{From: "c2", Path: MustParsePattern("co-.os"), To: "s"},
		},
	}
	got, err := eng.ConjunctiveSimilarity(c, courses[0], courses[1])
	if err != nil {
		t.Fatal(err)
	}
	want := eng.RelSim(MustParsePattern("co-.os.os-.co"), courses[0], []NodeID{courses[1]})
	if want.Len() != 1 || got != want.Scores[0] {
		t.Errorf("conjunctive = %v, chain = %v", got, want.Scores)
	}
}

func TestRenamingFacade(t *testing.T) {
	g, _, _ := courseGraph()
	ren := map[string]string{"co": "offering-course", "os": "offering-subject"}
	fwd := Renaming("r", ren)
	inv, err := RenamingInverse("r⁻¹", ren)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyInverse(g, fwd, inv) {
		t.Error("renaming must round-trip")
	}
	if _, err := RenamingInverse("bad", map[string]string{"a": "x", "b": "x"}); err == nil {
		t.Error("non-injective renaming must fail")
	}
}

func TestOpenStoreFacade(t *testing.T) {
	dir := t.TempDir()
	g, _, _ := courseGraph()
	st, err := OpenStore(dir,
		WithStoreSeed(g),
		WithStoreSync(SyncAlways),
		WithStoreCheckpointEvery(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	a := st.AddNode("facade-node", "subject")
	if err := st.AddEdge(a, "os", a); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Version() != 2 {
		t.Fatalf("recovered version = %d, want 2", st2.Version())
	}
	var ds DurabilityStats = st2.DurabilityStats()
	if !ds.Enabled || ds.Recovery.RecoveredVersion != 2 {
		t.Fatalf("durability stats = %+v", ds)
	}
	var feed StoreFeed = st2.LogFeed(0, 10)
	if feed.Gap || len(feed.Updates) != 2 {
		t.Fatalf("feed = %+v", feed)
	}
	// The server option compiles and wires: a durability-off server is
	// constructible over a durable store.
	if srv := NewServer(st2, nil, WithServerDurability(false), WithServerExpandCacheLimit(16)); srv == nil {
		t.Fatal("NewServer returned nil")
	}
}
